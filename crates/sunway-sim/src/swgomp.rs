//! SWGOMP's job-spawning hierarchy (§3.3.1, Fig. 5), executed with real
//! threads standing in for CPEs.
//!
//! "The job server exhibits a high flexibility, allowing new tasks to be
//! assigned to CPE by either the MPE or another CPE. The job server is
//! initialized by MPE using the Athread library. The MPE spawns team-head
//! threads via the job server to execute target portions. These team-head
//! CPEs have the capability to spawn threads on other CPEs within the team
//! to execute parallel code pieces."
//!
//! [`JobServer`] owns one persistent worker thread per simulated CPE.
//! [`JobServer::parallel_for`] distributes a loop directly from the MPE
//! (`!$omp parallel do`); [`JobServer::target_parallel_for`] first ships a
//! *team-head* job to a CPE, which then distributes the chunks to its team —
//! the `!$omp target` path of Fig. 4. Both block until every chunk retires,
//! which is what makes the internal lifetime erasure sound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A multi-producer multi-consumer job queue (the Athread mailbox): every
/// CPE worker pulls from the same queue, and both the MPE and team-head
/// CPEs push into it. Implemented on std primitives only so the crate
/// builds offline.
struct JobQueue {
    queue: Mutex<VecDeque<Msg>>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> Arc<Self> {
        Arc::new(JobQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        })
    }

    fn send(&self, msg: Msg) {
        self.queue
            .lock()
            .expect("job queue poisoned")
            .push_back(msg);
        self.ready.notify_one();
    }

    /// Blocking pop; only returns once a message is available.
    fn recv(&self) -> Msg {
        let mut q = self.queue.lock().expect("job queue poisoned");
        loop {
            if let Some(msg) = q.pop_front() {
                return msg;
            }
            q = self.ready.wait(q).expect("job queue poisoned");
        }
    }
}

/// Type-erased slice-of-work closure: `call(ctx, start, end)`.
#[derive(Clone, Copy)]
struct RawTask {
    ctx: *const (),
    call: unsafe fn(*const (), usize, usize),
}
// SAFETY: the referent is a `Fn(usize) + Sync` closure that the submitting
// thread keeps alive (and blocks on) until every chunk completes.
unsafe impl Send for RawTask {}

enum Msg {
    /// Execute `task` over `[start, end)` and decrement the barrier.
    Chunk {
        task: RawTask,
        start: usize,
        end: usize,
        done: Arc<Barrier>,
    },
    /// Become a team head: distribute `n_items` over the team, then barrier.
    TeamHead {
        task: RawTask,
        n_items: usize,
        chunk: usize,
        done: Arc<Barrier>,
    },
    Shutdown,
}

/// A simple completion barrier (count-down latch).
///
/// # Accounting conventions
///
/// The two launch paths initialize the latch differently, and the difference
/// is load-bearing:
///
/// * [`JobServer::parallel_for`] creates the barrier with **`n_chunks`**
///   tickets. The MPE enqueues every chunk itself, each chunk calls
///   [`Barrier::done`] exactly once when it retires, and the MPE's
///   [`Barrier::wait`] releases after the last chunk.
///
/// * [`JobServer::target_parallel_for`] creates the barrier with
///   **`n_chunks + 1`** tickets. The extra ticket belongs to the *team-head
///   job* itself: the team head must not let the MPE proceed until it has
///   finished enqueueing chunks, so it holds a ticket that it only
///   surrenders (in `worker_loop`'s `TeamHead` arm) after the last chunk is
///   in the queue. Without the `+1`, a fast team could retire every
///   already-enqueued chunk while the head is still enqueueing the rest,
///   dropping `remaining` to zero and releasing the MPE early — a
///   use-after-free on the borrowed closure.
///
/// `barrier_conventions_*` tests below pin both conventions down with
/// 1-item chunks and `n_items < n_cpes` stress shapes.
struct Barrier {
    remaining: AtomicUsize,
    /// Parking lot for [`Self::wait`]'s slow path. On real hardware the MPE
    /// spin-waits its LDM flag, but here blocked "MPEs" share host cores
    /// with the CPE workers — an unbounded hot spin burns a core per
    /// blocked waiter on an oversubscribed host (CI), starving the very
    /// workers it is waiting for.
    lock: Mutex<()>,
    released: Condvar,
}

/// Busy-spin iterations before [`Barrier::wait`] starts yielding.
const BARRIER_SPIN_ROUNDS: usize = 1 << 10;
/// `yield_now` rounds after spinning, before parking on the condvar.
const BARRIER_YIELD_ROUNDS: usize = 64;

impl Barrier {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Barrier {
            remaining: AtomicUsize::new(n),
            lock: Mutex::new(()),
            released: Condvar::new(),
        })
    }

    fn done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last ticket: serialize against a waiter between its count
            // check and its `Condvar::wait` (the lock closes that window),
            // then wake every parked waiter.
            let _guard = self.lock.lock().expect("barrier poisoned");
            self.released.notify_all();
        }
    }

    fn wait(&self) {
        // Fast path: bounded spin — chunks usually retire in microseconds,
        // and parking immediately would add a syscall to every dispatch.
        for _ in 0..BARRIER_SPIN_ROUNDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        for _ in 0..BARRIER_YIELD_ROUNDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::thread::yield_now();
        }
        // Slow path: park until the last `done` notifies. The count is
        // re-checked under the lock, so a release between the spin phase
        // and acquiring the lock cannot be missed.
        let mut guard = self.lock.lock().expect("barrier poisoned");
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.released.wait(guard).expect("barrier poisoned");
        }
    }
}

/// Scheduling statistics (who spawned what — the Fig. 5 hierarchy).
#[derive(Debug, Default)]
pub struct JobStats {
    /// Jobs enqueued by the MPE.
    pub spawned_by_mpe: AtomicU64,
    /// Jobs enqueued by team-head CPEs.
    pub spawned_by_cpe: AtomicU64,
    /// Chunks executed in total.
    pub chunks_run: AtomicU64,
}

/// The persistent CPE job server of one core group.
pub struct JobServer {
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
    pub n_cpes: usize,
    pub stats: Arc<JobStats>,
}

impl JobServer {
    /// Initialize the job server with `n_cpes` worker threads (the Athread
    /// initialization step).
    pub fn new(n_cpes: usize) -> Self {
        assert!(n_cpes >= 1);
        let queue = JobQueue::new();
        let stats = Arc::new(JobStats::default());
        let workers = (0..n_cpes)
            .map(|id| {
                let q = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("cpe-{id}"))
                    .spawn(move || worker_loop(q, stats))
                    .expect("spawn CPE worker")
            })
            .collect();
        JobServer {
            queue,
            workers,
            n_cpes,
            stats,
        }
    }

    fn erase<F: Fn(usize) + Sync>(f: &F) -> RawTask {
        unsafe fn call_impl<F: Fn(usize) + Sync>(ctx: *const (), start: usize, end: usize) {
            let f = unsafe { &*(ctx as *const F) };
            for i in start..end {
                f(i);
            }
        }
        RawTask {
            ctx: f as *const F as *const (),
            call: call_impl::<F>,
        }
    }

    fn chunk_count(n_items: usize, chunk: usize) -> usize {
        n_items.div_ceil(chunk.max(1))
    }

    /// `!$omp parallel do` from the MPE: distribute `0..n_items` in chunks
    /// over the CPEs and wait.
    pub fn parallel_for<F: Fn(usize) + Sync>(&self, n_items: usize, chunk: usize, f: &F) {
        if n_items == 0 {
            return;
        }
        let task = Self::erase(f);
        // Barrier convention: `n_chunks` tickets — one per chunk, no extra
        // (the MPE itself never holds a ticket on this path). See `Barrier`.
        let n_chunks = Self::chunk_count(n_items, chunk);
        let done = Barrier::new(n_chunks);
        let mut start = 0;
        while start < n_items {
            let end = (start + chunk).min(n_items);
            self.stats.spawned_by_mpe.fetch_add(1, Ordering::Relaxed);
            self.queue.send(Msg::Chunk {
                task,
                start,
                end,
                done: Arc::clone(&done),
            });
            start = end;
        }
        done.wait();
    }

    /// `!$omp target` + `!$omp do`: ship a team-head job to one CPE, which
    /// re-distributes the loop to its team members (Fig. 5's CPE-spawned
    /// jobs), then wait for the whole team.
    pub fn target_parallel_for<F: Fn(usize) + Sync>(&self, n_items: usize, chunk: usize, f: &F) {
        if n_items == 0 {
            return;
        }
        let task = Self::erase(f);
        // Barrier convention: `n_chunks + 1` tickets — one per chunk plus
        // one held by the team-head job until it finishes enqueueing, so the
        // MPE cannot be released while chunks are still being spawned. See
        // the `Barrier` doc comment for why the `+1` is load-bearing.
        let n_chunks = Self::chunk_count(n_items, chunk);
        let done = Barrier::new(n_chunks + 1);
        self.stats.spawned_by_mpe.fetch_add(1, Ordering::Relaxed);
        self.queue.send(Msg::TeamHead {
            task,
            n_items,
            chunk,
            done: Arc::clone(&done),
        });
        done.wait();
    }
}

/// Wrapper for sending a raw mutable base pointer into worker closures.
/// Soundness: each index is written by exactly one chunk, and the caller
/// blocks until all chunks retire.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor keeping closure captures at the (Sync) struct level —
    /// edition-2021 precise capture would otherwise grab the raw field.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl JobServer {
    /// `!$omp target parallel workshare` on `array = value` (the second
    /// idiom of Fig. 4: Fortran array assignments distributed over CPEs).
    pub fn target_workshare_fill<T: Copy + Send + Sync>(&self, data: &mut [T], value: T) {
        let n = data.len();
        let base = SyncPtr(data.as_mut_ptr());
        let chunk = n.div_ceil(4 * self.n_cpes).max(1);
        self.target_parallel_for(n, chunk, &|i| {
            // SAFETY: i < n, each i visited exactly once, caller blocks.
            unsafe { *base.get().add(i) = value };
        });
    }

    /// Workshare elementwise map `dst(:) = f(src(:))`.
    pub fn target_workshare_map<T, U, F>(&self, dst: &mut [U], src: &[T], f: F)
    where
        T: Sync,
        U: Send + Sync,
        F: Fn(&T) -> U + Sync,
    {
        assert_eq!(dst.len(), src.len());
        let n = dst.len();
        let base = SyncPtr(dst.as_mut_ptr());
        let chunk = n.div_ceil(4 * self.n_cpes).max(1);
        self.target_parallel_for(n, chunk, &|i| {
            // SAFETY: disjoint writes, completion barrier before return.
            unsafe { base.get().add(i).write(f(&src[i])) };
        });
    }
}

fn worker_loop(queue: Arc<JobQueue>, stats: Arc<JobStats>) {
    loop {
        match queue.recv() {
            Msg::Chunk {
                task,
                start,
                end,
                done,
            } => {
                unsafe { (task.call)(task.ctx, start, end) };
                stats.chunks_run.fetch_add(1, Ordering::Relaxed);
                done.done();
            }
            Msg::TeamHead {
                task,
                n_items,
                chunk,
                done,
            } => {
                // Distribute to the team (including possibly ourselves).
                let mut start = 0;
                while start < n_items {
                    let end = (start + chunk).min(n_items);
                    stats.spawned_by_cpe.fetch_add(1, Ordering::Relaxed);
                    queue.send(Msg::Chunk {
                        task,
                        start,
                        end,
                        done: Arc::clone(&done),
                    });
                    start = end;
                }
                done.done(); // surrender the team head's barrier ticket
            }
            Msg::Shutdown => break,
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        for _ in &self.workers {
            self.queue.send(Msg::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_touches_every_index_once() {
        let server = JobServer::new(8);
        let n = 10_000;
        let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        server.parallel_for(n, 64, &|i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn target_parallel_for_computes_the_same_result() {
        let server = JobServer::new(8);
        let n = 5_000;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        server.target_parallel_for(n, 128, &|i| {
            out[i].store((i * i) as u64, Ordering::Relaxed);
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), (i * i) as u64);
        }
    }

    #[test]
    fn target_path_spawns_chunks_from_a_cpe() {
        // Fig. 5: with `target`, the chunk jobs are enqueued by the team-head
        // CPE, not the MPE.
        let server = JobServer::new(4);
        server.target_parallel_for(1000, 100, &|_| {});
        assert_eq!(server.stats.spawned_by_mpe.load(Ordering::Relaxed), 1);
        assert_eq!(server.stats.spawned_by_cpe.load(Ordering::Relaxed), 10);
        assert_eq!(server.stats.chunks_run.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn mpe_path_spawns_chunks_from_the_mpe() {
        let server = JobServer::new(4);
        server.parallel_for(1000, 100, &|_| {});
        assert_eq!(server.stats.spawned_by_mpe.load(Ordering::Relaxed), 10);
        assert_eq!(server.stats.spawned_by_cpe.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn repeated_launches_reuse_the_persistent_workers() {
        let server = JobServer::new(8);
        let acc = AtomicU64::new(0);
        for _ in 0..50 {
            server.parallel_for(256, 16, &|_| {
                acc.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(acc.load(Ordering::Relaxed), 50 * 256);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let server = JobServer::new(64); // full CPE complement
        let data: Vec<u64> = (0..100_000).map(|i| i % 97).collect();
        let total = AtomicU64::new(0);
        server.target_parallel_for(data.len(), 1024, &|i| {
            total.fetch_add(data[i], Ordering::Relaxed);
        });
        let expected: u64 = data.iter().sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn workshare_fill_zeroes_an_array_like_fig4() {
        // Fig. 4: `kinetic_energy(:,:) = 0` under target parallel workshare.
        let server = JobServer::new(8);
        let mut ke = vec![3.25f64; 10_000];
        server.target_workshare_fill(&mut ke, 0.0);
        assert!(ke.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn workshare_map_applies_elementwise() {
        let server = JobServer::new(8);
        let src: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let mut dst = vec![0.0f64; 5000];
        server.target_workshare_map(&mut dst, &src, |&x| 2.0 * x + 1.0);
        for (i, &d) in dst.iter().enumerate() {
            assert_eq!(d, 2.0 * i as f64 + 1.0);
        }
    }

    #[test]
    fn workshare_on_empty_slices_is_a_noop() {
        let server = JobServer::new(2);
        let mut empty: Vec<f64> = Vec::new();
        server.target_workshare_fill(&mut empty, 1.0);
        server.target_workshare_map(&mut empty, &[], |&x: &f64| x);
    }

    #[test]
    fn empty_range_is_a_noop() {
        let server = JobServer::new(2);
        server.parallel_for(0, 16, &|_| panic!("must not run"));
        server.target_parallel_for(0, 16, &|_| panic!("must not run"));
    }

    /// Barrier convention stress, MPE path: 1-item chunks mean every index
    /// is its own job and the latch starts at exactly `n_items`. The wait
    /// must neither hang (too many tickets) nor release before every write
    /// lands (too few).
    #[test]
    fn barrier_conventions_one_item_chunks_mpe_path() {
        let server = JobServer::new(8);
        for round in 0..20 {
            let n = 257 + round; // odd sizes, never a multiple of the team
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            server.parallel_for(n, 1, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            // No early release: by the time parallel_for returns, every
            // index has been written exactly once.
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    /// Barrier convention stress, target path: 1-item chunks through a team
    /// head. The latch starts at `n_items + 1`; the team head's extra ticket
    /// must be surrendered (no hang) and must hold the MPE back until all
    /// chunks are enqueued (no early release).
    #[test]
    fn barrier_conventions_one_item_chunks_target_path() {
        let server = JobServer::new(8);
        for round in 0..20 {
            let n = 131 + round;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            server.target_parallel_for(n, 1, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        // Every chunk went through the team head, none through the MPE.
        assert_eq!(server.stats.spawned_by_mpe.load(Ordering::Relaxed), 20);
        let expected_cpe: u64 = (0..20u64).map(|r| 131 + r).sum();
        assert_eq!(
            server.stats.spawned_by_cpe.load(Ordering::Relaxed),
            expected_cpe
        );
        assert_eq!(
            server.stats.chunks_run.load(Ordering::Relaxed),
            expected_cpe
        );
    }

    /// The parking slow path: a ticket that retires long after the spin and
    /// yield budgets are exhausted must still release the waiter (and not
    /// hang on a missed wakeup).
    #[test]
    fn barrier_wait_parks_until_late_completion() {
        for _ in 0..10 {
            let done = Barrier::new(1);
            let d2 = Arc::clone(&done);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                d2.done();
            });
            done.wait(); // far beyond the spin/yield budget → parks
            assert_eq!(done.remaining.load(Ordering::Relaxed), 0);
            t.join().unwrap();
        }
    }

    /// A barrier that is already released must never block, whichever path
    /// the waiter takes.
    #[test]
    fn barrier_wait_returns_immediately_when_released() {
        let done = Barrier::new(1);
        done.done();
        done.wait();
        done.wait(); // idempotent
    }

    /// Fewer items than CPEs: most workers stay idle, and the idle majority
    /// must not be counted as barrier participants. Both paths must return
    /// promptly with every item done exactly once.
    #[test]
    fn barrier_conventions_fewer_items_than_cpes() {
        let server = JobServer::new(32);
        for n in [1usize, 2, 3, 5, 31] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            server.parallel_for(n, 1, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "mpe path, n={n}"
            );

            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            server.target_parallel_for(n, 1, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "target path, n={n}"
            );
        }
    }
}
