//! The snapshot store: epoch-tagged checkpoint views, the isolation boundary
//! between the running ensemble and the query side.
//!
//! **Isolation rule (pinned):** the simulation side only publishes between
//! `advance` calls — a [`Checkpoint`] captured from a quiescent model, tagged
//! with its `dyn_steps` epoch and `state_hash`. A published [`EpochView`] is
//! immutable (queries hold it by `Arc`), so no query can ever observe a
//! half-stepped prognostic field: it either sees epoch `e` exactly as
//! captured, or epoch `e+1` exactly as captured, never anything in between.
//! Epochs per member are strictly increasing; publishing a stale or
//! duplicate epoch is a programming error and panics.

use grist_core::Checkpoint;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One member's state at one epoch, exactly as captured.
#[derive(Debug, Clone)]
pub struct EpochView {
    /// Ensemble member index.
    pub member: usize,
    /// The member's `dyn_steps` at capture — the cache-invalidation key.
    pub epoch: u64,
    /// The member's `state_hash` at capture; serving replicas verify their
    /// restored state against it before answering from the view.
    pub state_hash: u64,
    /// The bit-exact captured state.
    pub checkpoint: Checkpoint,
}

/// Published views for every ensemble member, most recent first, with a
/// bounded per-member history (`retain`) so benchmark verification can
/// recompute products from the *source* epoch even after newer publishes.
#[derive(Debug)]
pub struct SnapshotStore {
    members: Vec<Mutex<VecDeque<Arc<EpochView>>>>,
    retain: usize,
    /// Append-only `(member, epoch, state_hash)` publish log — what the
    /// no-torn-reads property test checks responses against.
    log: Mutex<Vec<(usize, u64, u64)>>,
}

impl SnapshotStore {
    /// A store for `n_members` members keeping the `retain` most recent
    /// views per member (`retain >= 1`).
    pub fn new(n_members: usize, retain: usize) -> Self {
        assert!(retain >= 1, "must retain at least the latest view");
        SnapshotStore {
            members: (0..n_members)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            retain,
            log: Mutex::new(Vec::new()),
        }
    }

    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Publish a new view for its member. Panics if the member is out of
    /// range or the epoch does not advance — both are bugs on the
    /// simulation side, not query-time conditions.
    pub fn publish(&self, view: EpochView) -> Arc<EpochView> {
        let member = view.member;
        let mut q = self.members[member].lock().expect("store poisoned");
        if let Some(last) = q.back() {
            assert!(
                view.epoch > last.epoch,
                "member {member}: epoch must advance (published {} after {})",
                view.epoch,
                last.epoch
            );
        }
        let view = Arc::new(view);
        q.push_back(Arc::clone(&view));
        while q.len() > self.retain {
            q.pop_front();
        }
        drop(q);
        self.log
            .lock()
            .expect("store poisoned")
            .push((member, view.epoch, view.state_hash));
        view
    }

    /// The most recent view for `member` (`None` before the first publish
    /// or for an out-of-range member).
    pub fn latest(&self, member: usize) -> Option<Arc<EpochView>> {
        self.members
            .get(member)?
            .lock()
            .expect("store poisoned")
            .back()
            .cloned()
    }

    /// A specific retained epoch of `member` (`None` if never published or
    /// already evicted by the retention window).
    pub fn get(&self, member: usize, epoch: u64) -> Option<Arc<EpochView>> {
        self.members
            .get(member)?
            .lock()
            .expect("store poisoned")
            .iter()
            .find(|v| v.epoch == epoch)
            .cloned()
    }

    /// Every `(member, epoch, state_hash)` ever published, in publish order.
    pub fn published_log(&self) -> Vec<(usize, u64, u64)> {
        self.log.lock().expect("store poisoned").clone()
    }

    /// Total number of publishes across all members.
    pub fn published_count(&self) -> usize {
        self.log.lock().expect("store poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grist_core::{GristModel, RunConfig};

    fn view_of(model: &GristModel<f64>, member: usize) -> EpochView {
        EpochView {
            member,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash(),
            checkpoint: model.checkpoint(),
        }
    }

    #[test]
    fn publish_latest_get_and_retention() {
        let mut m = GristModel::<f64>::new(RunConfig::for_level(2, 6));
        let store = SnapshotStore::new(2, 2);
        assert_eq!(store.n_members(), 2);
        assert!(store.latest(0).is_none());
        assert!(
            store.latest(99).is_none(),
            "out of range is None, not panic"
        );

        store.publish(view_of(&m, 0));
        let e0 = m.dyn_steps() as u64;
        m.advance(m.config.dt_phy);
        store.publish(view_of(&m, 0));
        let e1 = m.dyn_steps() as u64;
        m.advance(m.config.dt_phy);
        store.publish(view_of(&m, 0));
        let e2 = m.dyn_steps() as u64;

        assert_eq!(store.latest(0).unwrap().epoch, e2);
        assert!(store.get(0, e0).is_none(), "evicted by retain=2");
        assert_eq!(store.get(0, e1).unwrap().epoch, e1);
        assert!(store.latest(1).is_none(), "members are independent");
        assert_eq!(store.published_count(), 3);
        let log = store.published_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].0, 0);
        assert!(log[0].1 < log[1].1 && log[1].1 < log[2].1);
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn republishing_an_epoch_panics() {
        let m = GristModel::<f64>::new(RunConfig::for_level(2, 6));
        let store = SnapshotStore::new(1, 4);
        store.publish(view_of(&m, 0));
        store.publish(view_of(&m, 0));
    }
}
