//! The query engine: snapshot-backed serving replicas, the derived-product
//! cache, and the batched dispatch path.
//!
//! Each member gets a serving **replica** — a `GristModel` used purely as a
//! restore target. When a query arrives for a member whose replica is on an
//! older epoch than the store's latest view, the replica restores the view's
//! checkpoint (verifying `state_hash` — a mismatch means the view is not the
//! bit-exact captured state and the query is refused rather than answered
//! wrong), extracts physics columns once, and resets the derived-product
//! cache: **cache invalidation is the epoch key and nothing else**.
//!
//! Derived products (precip, t2m) run the full ML physics suite on the
//! queried columns. [`QueryEngine::serve_batch`] gathers every uncached
//! `(member, cell)` a batch of queries needs into *one*
//! [`MlSuite::step_columns`] call — the `ScratchPool`-backed im2col+GEMM
//! block dispatch — while [`QueryEngine::serve_one_percol`] is the
//! per-query reference path (one dispatch per column, bitwise-identical
//! results, no cross-query batching) that `bench_serve` measures against.

use crate::store::SnapshotStore;
use grist_core::{extract_columns, GristModel, MlOutput, MlSuite, RunConfig};
use grist_dycore::Real;
use grist_physics::Column;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use sunway_sim::{flow_scope, EventKind, Substrate};

/// What a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Product {
    /// Raw column state (profiles) at the snapshot epoch.
    ColumnState,
    /// 2 m air temperature, K: the lowest-level temperature blended with
    /// the ML-updated skin temperature.
    T2m,
    /// Surface precipitation rate, mm/day, from the ML physics suite.
    Precip,
}

/// Where a query looks.
#[derive(Debug, Clone, PartialEq)]
pub enum Select {
    /// One mesh cell by index.
    Cell(usize),
    /// Nearest cell to a lat/lon point (radians).
    Point { lat: f64, lon: f64 },
    /// Every cell inside an inclusive lat/lon box (radians; no wraparound).
    Region { lat: (f64, f64), lon: (f64, f64) },
}

/// A forecast query against one ensemble member's latest snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub member: usize,
    pub select: Select,
    pub product: Product,
}

impl Query {
    pub fn point(member: usize, lat: f64, lon: f64, product: Product) -> Self {
        Query {
            member,
            select: Select::Point { lat, lon },
            product,
        }
    }

    pub fn cell(member: usize, cell: usize, product: Product) -> Self {
        Query {
            member,
            select: Select::Cell(cell),
            product,
        }
    }
}

/// One cell's raw profiles (f64; working-precision fields widen losslessly).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnState {
    pub p: Vec<f64>,
    pub t: Vec<f64>,
    pub qv: Vec<f64>,
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    pub tskin: f64,
}

impl ColumnState {
    fn from_column(col: &Column) -> Self {
        ColumnState {
            p: col.p.clone(),
            t: col.t.clone(),
            qv: col.qv.clone(),
            u: col.u.clone(),
            v: col.v.clone(),
            tskin: col.tskin,
        }
    }
}

/// Cached derived products for one cell at one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    pub precip: f64,
    pub t2m: f64,
}

/// The pinned derived-product convention. Public so the benchmark's
/// recompute-from-checkpoint verifier reproduces served values bit-exactly
/// instead of re-encoding the formula.
pub fn derive(col: &Column, out: &MlOutput) -> Derived {
    let nlev = col.t.len();
    Derived {
        precip: out.diag.precip,
        t2m: 0.5 * (col.t[nlev - 1] + out.diag.tskin),
    }
}

/// Per-cell payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ProductData {
    Columns(Vec<ColumnState>),
    Scalars(Vec<f64>),
}

/// The answer to one [`Query`], stamped with the snapshot it was served
/// from: `(epoch, state_hash)` must match exactly one published view — the
/// no-torn-reads property.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub member: usize,
    pub epoch: u64,
    pub state_hash: u64,
    pub cells: Vec<usize>,
    pub data: ProductData,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    UnknownMember {
        member: usize,
        n_members: usize,
    },
    UnknownCell {
        cell: usize,
        ncells: usize,
    },
    NoSnapshot {
        member: usize,
    },
    EmptyRegion,
    /// The view's checkpoint failed to restore into the serving replica.
    ViewRejected {
        member: usize,
        epoch: u64,
        what: String,
    },
    /// The restored replica does not hash to the view's `state_hash`.
    TornView {
        member: usize,
        epoch: u64,
        expected: u64,
        got: u64,
    },
    /// The server is shutting down and dropped the request.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownMember { member, n_members } => {
                write!(f, "unknown member {member} (ensemble has {n_members})")
            }
            ServeError::UnknownCell { cell, ncells } => {
                write!(f, "unknown cell {cell} (mesh has {ncells})")
            }
            ServeError::NoSnapshot { member } => {
                write!(f, "member {member} has not published a snapshot yet")
            }
            ServeError::EmptyRegion => write!(f, "region selects no cells"),
            ServeError::ViewRejected {
                member,
                epoch,
                what,
            } => {
                write!(f, "member {member} epoch {epoch}: view rejected: {what}")
            }
            ServeError::TornView {
                member,
                epoch,
                expected,
                got,
            } => write!(
                f,
                "member {member} epoch {epoch}: restored state hashes to \
                 {got:#x}, view published {expected:#x}"
            ),
            ServeError::Disconnected => write!(f, "server disconnected"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The pinned serving suite: every consumer (engine, benchmark verifier)
/// that builds from the same `nlev` gets bitwise-identical weights, which
/// is what makes "recompute from the source checkpoint" an exact check.
pub fn default_suite(nlev: usize) -> MlSuite {
    MlSuite::untrained(nlev, 16, 0x5e12)
}

struct ViewCache {
    epoch: u64,
    state_hash: u64,
    columns: Arc<Vec<Column>>,
    derived: Vec<Option<Derived>>,
}

struct Replica<R: Real> {
    model: GristModel<R>,
    cache: Option<ViewCache>,
}

/// Everything a batch needs from one member, decoupled from the replica
/// lock: the `Arc`'d columns pin the epoch's data even if the replica moves
/// to a newer view mid-batch, so responses stay internally consistent.
struct MemberPlan {
    epoch: u64,
    state_hash: u64,
    columns: Arc<Vec<Column>>,
    derived: Vec<Option<Derived>>,
}

/// Snapshot-isolated query answering for every ensemble member.
pub struct QueryEngine<R: Real> {
    store: Arc<SnapshotStore>,
    suite: MlSuite,
    members: Vec<Mutex<Replica<R>>>,
    lats: Vec<f64>,
    lons: Vec<f64>,
    sub: Substrate,
    cache_enabled: bool,
}

impl<R: Real> QueryEngine<R> {
    /// An engine serving `store`'s members, dispatching on `sub` (the
    /// engine's own substrate — serving cost never pollutes the
    /// simulation's metrics registry). `suite.nlev` must match the run.
    pub fn new(
        store: Arc<SnapshotStore>,
        config: RunConfig,
        sub: Substrate,
        mut suite: MlSuite,
    ) -> Self {
        assert_eq!(
            suite.nlev, config.nlev,
            "serving suite must match the run's vertical resolution"
        );
        suite.sub = sub.clone();
        let members: Vec<Mutex<Replica<R>>> = (0..store.n_members())
            .map(|_| {
                Mutex::new(Replica {
                    model: GristModel::<R>::with_substrate(config.clone(), sub.clone()),
                    cache: None,
                })
            })
            .collect();
        let (lats, lons) = {
            let rep = members[0].lock().expect("replica poisoned");
            (rep.model.lats.clone(), rep.model.lons.clone())
        };
        QueryEngine {
            store,
            suite,
            members,
            lats,
            lons,
            sub,
            cache_enabled: true,
        }
    }

    /// Disable the derived-product cache (benchmark mode: every query pays
    /// the full dispatch, isolating batched-vs-per-query throughput).
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// The engine's substrate (counters: `serve.queries`, `serve.batches`,
    /// `serve.view.restores`, `serve.cache.{hits,misses}`, `serve.ml.cells`).
    pub fn substrate(&self) -> &Substrate {
        &self.sub
    }

    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    pub fn n_cells(&self) -> usize {
        self.lats.len()
    }

    /// Resolve a selector to concrete mesh cells.
    pub fn resolve(&self, select: &Select) -> Result<Vec<usize>, ServeError> {
        let ncells = self.lats.len();
        match *select {
            Select::Cell(cell) => {
                if cell < ncells {
                    Ok(vec![cell])
                } else {
                    Err(ServeError::UnknownCell { cell, ncells })
                }
            }
            Select::Point { lat, lon } => {
                // Nearest cell by great-circle angle (maximize the cosine).
                let (mut best, mut best_cos) = (0usize, f64::NEG_INFINITY);
                for c in 0..ncells {
                    let cosang = lat.sin() * self.lats[c].sin()
                        + lat.cos() * self.lats[c].cos() * (lon - self.lons[c]).cos();
                    if cosang > best_cos {
                        best_cos = cosang;
                        best = c;
                    }
                }
                Ok(vec![best])
            }
            Select::Region { lat, lon } => {
                let cells: Vec<usize> = (0..ncells)
                    .filter(|&c| {
                        self.lats[c] >= lat.0
                            && self.lats[c] <= lat.1
                            && self.lons[c] >= lon.0
                            && self.lons[c] <= lon.1
                    })
                    .collect();
                if cells.is_empty() {
                    Err(ServeError::EmptyRegion)
                } else {
                    Ok(cells)
                }
            }
        }
    }

    /// Sync `member`'s replica to the store's latest view and return the
    /// epoch-pinned plan. Restores (and re-extracts columns, and drops the
    /// derived cache) only when the epoch moved.
    fn member_plan(&self, member: usize) -> Result<MemberPlan, ServeError> {
        if member >= self.members.len() {
            return Err(ServeError::UnknownMember {
                member,
                n_members: self.members.len(),
            });
        }
        let view = self
            .store
            .latest(member)
            .ok_or(ServeError::NoSnapshot { member })?;
        let mut rep = self.members[member].lock().expect("replica poisoned");
        let stale = rep.cache.as_ref().is_none_or(|c| c.epoch != view.epoch);
        if stale {
            rep.model
                .restore(&view.checkpoint)
                .map_err(|e| ServeError::ViewRejected {
                    member,
                    epoch: view.epoch,
                    what: e.to_string(),
                })?;
            let got = rep.model.state_hash();
            if got != view.state_hash {
                rep.cache = None;
                return Err(ServeError::TornView {
                    member,
                    epoch: view.epoch,
                    expected: view.state_hash,
                    got,
                });
            }
            let model = &mut rep.model;
            let cols = extract_columns(&mut model.solver, &model.state, &model.surface);
            let ncells = cols.len();
            rep.cache = Some(ViewCache {
                epoch: view.epoch,
                state_hash: view.state_hash,
                columns: Arc::new(cols),
                derived: vec![None; ncells],
            });
            self.sub.metrics().counter_add("serve.view.restores", 1);
        }
        let cache = rep.cache.as_ref().expect("cache just synced");
        Ok(MemberPlan {
            epoch: cache.epoch,
            state_hash: cache.state_hash,
            columns: Arc::clone(&cache.columns),
            derived: if self.cache_enabled {
                cache.derived.clone()
            } else {
                vec![None; cache.columns.len()]
            },
        })
    }

    /// Answer a batch of queries with **one** block-batched ML dispatch for
    /// every uncached derived cell across the whole batch. Results align
    /// with `queries`.
    pub fn serve_batch(&self, queries: &[Query]) -> Vec<Result<Response, ServeError>> {
        self.serve_batch_traced(queries, &[])
    }

    /// [`Self::serve_batch`] carrying request-scoped flow IDs (one per
    /// query, 0 = untraced; see `ObsPlane::mint_trace_id` in `grist-obs`).
    /// Each live ID gets a `FlowStep` on this worker's lane as the batch
    /// opens, and rides the thread-local flow scope into every substrate
    /// dispatch under the batch, joining the served answer to its kernel
    /// spans in the Perfetto export. With tracing disabled or no IDs this
    /// is byte-for-byte `serve_batch`.
    pub fn serve_batch_traced(
        &self,
        queries: &[Query],
        trace_ids: &[u64],
    ) -> Vec<Result<Response, ServeError>> {
        let _span = self.sub.span("serve");
        let m = self.sub.metrics();
        let tracer = m.tracer();
        for &id in trace_ids {
            tracer.record_flow(EventKind::FlowStep, "request", id);
        }
        let _flow = flow_scope(trace_ids);
        m.counter_add("serve.batches", 1);
        m.counter_add("serve.queries", queries.len() as u64);

        // Resolve every query and sync each touched member once.
        let mut plans: BTreeMap<usize, MemberPlan> = BTreeMap::new();
        let mut resolved: Vec<Result<Vec<usize>, ServeError>> = Vec::with_capacity(queries.len());
        for q in queries {
            let r = (|| {
                if let std::collections::btree_map::Entry::Vacant(e) = plans.entry(q.member) {
                    e.insert(self.member_plan(q.member)?);
                }
                self.resolve(&q.select)
            })();
            resolved.push(r);
        }

        // Gather every uncached (member, cell) needing derived products.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for (q, r) in queries.iter().zip(&resolved) {
            let (Ok(cells), true) = (r, q.product != Product::ColumnState) else {
                continue;
            };
            let plan = &plans[&q.member];
            for &cell in cells {
                if plan.derived[cell].is_some() {
                    hits += 1;
                } else if seen.insert((q.member, cell)) {
                    misses += 1;
                    jobs.push((q.member, cell));
                } else {
                    hits += 1; // another query in this batch already pays
                }
            }
        }
        m.counter_add("serve.cache.hits", hits);
        m.counter_add("serve.cache.misses", misses);

        // One batched dispatch for the whole batch's missing cells.
        if !jobs.is_empty() {
            let cols: Vec<Column> = jobs
                .iter()
                .map(|&(mb, cell)| plans[&mb].columns[cell].clone())
                .collect();
            let outs = self.suite.step_columns(&cols);
            m.counter_add("serve.ml.cells", jobs.len() as u64);
            for (&(mb, cell), out) in jobs.iter().zip(&outs) {
                let plan = plans.get_mut(&mb).unwrap();
                plan.derived[cell] = Some(derive(&plan.columns[cell], out));
            }
        }

        // Write fresh derived values back into each member's cache — only
        // if the replica is still on the epoch the batch computed against.
        if self.cache_enabled {
            for (&mb, plan) in &plans {
                let mut rep = self.members[mb].lock().expect("replica poisoned");
                if let Some(cache) = rep.cache.as_mut() {
                    if cache.epoch == plan.epoch {
                        for (slot, fresh) in cache.derived.iter_mut().zip(&plan.derived) {
                            if slot.is_none() {
                                *slot = *fresh;
                            }
                        }
                    }
                }
            }
        }

        // Assemble responses from the epoch-pinned plans.
        queries
            .iter()
            .zip(resolved)
            .map(|(q, r)| {
                let cells = r?;
                let plan = &plans[&q.member];
                let data = match q.product {
                    Product::ColumnState => ProductData::Columns(
                        cells
                            .iter()
                            .map(|&c| ColumnState::from_column(&plan.columns[c]))
                            .collect(),
                    ),
                    Product::T2m => ProductData::Scalars(
                        cells
                            .iter()
                            .map(|&c| plan.derived[c].expect("derived computed").t2m)
                            .collect(),
                    ),
                    Product::Precip => ProductData::Scalars(
                        cells
                            .iter()
                            .map(|&c| plan.derived[c].expect("derived computed").precip)
                            .collect(),
                    ),
                };
                Ok(Response {
                    member: q.member,
                    epoch: plan.epoch,
                    state_hash: plan.state_hash,
                    cells,
                    data,
                })
            })
            .collect()
    }

    /// The per-query reference path: same answers, one ML dispatch *per
    /// column* and no cross-query batching or caching. `bench_serve`
    /// measures [`Self::serve_batch`] against this.
    pub fn serve_one_percol(&self, q: &Query) -> Result<Response, ServeError> {
        let _span = self.sub.span("serve_percol");
        let m = self.sub.metrics();
        m.counter_add("serve.percol.queries", 1);
        let plan = self.member_plan(q.member)?;
        let cells = self.resolve(&q.select)?;
        let data = match q.product {
            Product::ColumnState => ProductData::Columns(
                cells
                    .iter()
                    .map(|&c| ColumnState::from_column(&plan.columns[c]))
                    .collect(),
            ),
            product => {
                let cols: Vec<Column> = cells.iter().map(|&c| plan.columns[c].clone()).collect();
                let outs = self.suite.step_columns_per_column(&cols);
                m.counter_add("serve.ml.cells", cols.len() as u64);
                ProductData::Scalars(
                    cols.iter()
                        .zip(&outs)
                        .map(|(col, out)| {
                            let d = derive(col, out);
                            match product {
                                Product::T2m => d.t2m,
                                _ => d.precip,
                            }
                        })
                        .collect(),
                )
            }
        };
        Ok(Response {
            member: q.member,
            epoch: plan.epoch,
            state_hash: plan.state_hash,
            cells,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EpochView;
    use grist_core::RunConfig;

    fn seeded_store(cfg: &RunConfig, members: usize) -> (Arc<SnapshotStore>, Vec<GristModel<f64>>) {
        let store = Arc::new(SnapshotStore::new(members, 4));
        let mut models = Vec::new();
        for mb in 0..members {
            let mut model = GristModel::<f64>::new(cfg.clone());
            for _ in 0..mb {
                model.advance(cfg.dt_phy); // members diverge in epoch too
            }
            store.publish(EpochView {
                member: mb,
                epoch: model.dyn_steps() as u64,
                state_hash: model.state_hash(),
                checkpoint: model.checkpoint(),
            });
            models.push(model);
        }
        (store, models)
    }

    fn engine(cfg: &RunConfig, store: Arc<SnapshotStore>) -> QueryEngine<f64> {
        QueryEngine::new(
            store,
            cfg.clone(),
            Substrate::serial(),
            default_suite(cfg.nlev),
        )
    }

    #[test]
    fn batched_and_percol_paths_agree_bitwise() {
        let cfg = RunConfig::for_level(2, 6);
        let (store, _models) = seeded_store(&cfg, 2);
        let eng = engine(&cfg, store);
        let queries: Vec<Query> = (0..12)
            .map(|i| {
                let product = match i % 3 {
                    0 => Product::Precip,
                    1 => Product::T2m,
                    _ => Product::ColumnState,
                };
                Query::cell(i % 2, (i * 11) % eng.n_cells(), product)
            })
            .collect();
        let batched = eng.serve_batch(&queries);
        for (q, b) in queries.iter().zip(&batched) {
            let one = eng.serve_one_percol(q).unwrap();
            assert_eq!(b.as_ref().unwrap(), &one, "paths must agree bitwise");
        }
        let m = eng.substrate().metrics();
        assert_eq!(m.counter("serve.queries"), 12);
        assert_eq!(m.counter("serve.batches"), 1);
    }

    #[test]
    fn derived_cache_hits_within_an_epoch_and_invalidates_across() {
        let cfg = RunConfig::for_level(2, 6);
        let (store, mut models) = seeded_store(&cfg, 1);
        let eng = engine(&cfg, store.clone());
        let q = Query::cell(0, 5, Product::Precip);
        let first = eng.serve_batch(std::slice::from_ref(&q));
        let m = eng.substrate().metrics();
        assert_eq!(m.counter("serve.cache.misses"), 1);
        assert_eq!(m.counter("serve.view.restores"), 1);
        let second = eng.serve_batch(std::slice::from_ref(&q));
        assert_eq!(m.counter("serve.cache.hits"), 1, "second query is cached");
        assert_eq!(m.counter("serve.ml.cells"), 1, "no second dispatch");
        assert_eq!(first[0], second[0]);

        // Publish a newer epoch: the cache must invalidate and re-restore.
        let model = &mut models[0];
        model.advance(cfg.dt_phy);
        store.publish(EpochView {
            member: 0,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash(),
            checkpoint: model.checkpoint(),
        });
        let third = eng.serve_batch(std::slice::from_ref(&q));
        assert_eq!(m.counter("serve.view.restores"), 2);
        assert_eq!(m.counter("serve.cache.misses"), 2);
        let (a, b) = (first[0].as_ref().unwrap(), third[0].as_ref().unwrap());
        assert!(a.epoch < b.epoch, "response is stamped with the new epoch");
        assert_ne!(a.state_hash, b.state_hash);
    }

    #[test]
    fn selectors_resolve_points_regions_and_reject_bad_input() {
        let cfg = RunConfig::for_level(2, 6);
        let (store, _models) = seeded_store(&cfg, 1);
        let eng = engine(&cfg, store);
        let ncells = eng.n_cells();
        assert_eq!(eng.resolve(&Select::Cell(0)).unwrap(), vec![0]);
        assert_eq!(
            eng.resolve(&Select::Cell(ncells)),
            Err(ServeError::UnknownCell {
                cell: ncells,
                ncells
            })
        );
        // A hemisphere-sized region catches at least one cell; the whole
        // globe catches all of them.
        let all = eng
            .resolve(&Select::Region {
                lat: (-2.0, 2.0),
                lon: (-4.0, 4.0),
            })
            .unwrap();
        assert_eq!(all.len(), ncells);
        assert_eq!(
            eng.resolve(&Select::Region {
                lat: (1.0, -1.0),
                lon: (0.0, 0.0)
            }),
            Err(ServeError::EmptyRegion)
        );
        // Point resolution returns the argmax-cosine cell.
        let c = eng.resolve(&Select::Point { lat: 0.3, lon: 1.1 }).unwrap()[0];
        assert!(c < ncells);
    }

    #[test]
    fn errors_name_member_and_snapshot_conditions() {
        let cfg = RunConfig::for_level(2, 6);
        let store = Arc::new(SnapshotStore::new(2, 2));
        // Member 1 never publishes.
        let mut model = GristModel::<f64>::new(cfg.clone());
        model.advance(cfg.dt_phy);
        store.publish(EpochView {
            member: 0,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash(),
            checkpoint: model.checkpoint(),
        });
        let eng = engine(&cfg, store);
        let out = eng.serve_batch(&[
            Query::cell(0, 0, Product::T2m),
            Query::cell(1, 0, Product::T2m),
            Query::cell(9, 0, Product::T2m),
        ]);
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(ServeError::NoSnapshot { member: 1 }));
        assert_eq!(
            out[2],
            Err(ServeError::UnknownMember {
                member: 9,
                n_members: 2
            })
        );
        let msg = out[2].as_ref().unwrap_err().to_string();
        assert!(msg.contains('9') && msg.contains('2'), "{msg}");
    }

    #[test]
    fn torn_view_is_refused_not_served() {
        // Publish a view whose advertised hash disagrees with its
        // checkpoint: the engine must refuse, naming both hashes.
        let cfg = RunConfig::for_level(2, 6);
        let model = GristModel::<f64>::new(cfg.clone());
        let store = Arc::new(SnapshotStore::new(1, 2));
        store.publish(EpochView {
            member: 0,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash() ^ 1, // deliberately wrong
            checkpoint: model.checkpoint(),
        });
        let eng = engine(&cfg, store);
        let out = eng.serve_batch(&[Query::cell(0, 0, Product::Precip)]);
        match out[0].as_ref().unwrap_err() {
            ServeError::TornView { expected, got, .. } => {
                assert_eq!(*expected, model.state_hash() ^ 1);
                assert_eq!(*got, model.state_hash());
            }
            other => panic!("expected TornView, got {other:?}"),
        }
    }
}
