//! # grist-serve
//!
//! The operational face of the reproduction: a forecast *service* answering
//! point/region queries (column state, derived products like precip/t2m)
//! against a **running** ensemble, without external dependencies — the
//! front-end is a plain thread pool draining an mpsc channel, so the crate
//! builds fully offline like the rest of the workspace.
//!
//! The design splits into four pieces (DESIGN.md §12):
//!
//! * [`SnapshotStore`] — epoch-tagged, [`Checkpoint`](grist_core::Checkpoint)-
//!   backed views published by the simulation side between `advance` calls.
//!   Views are immutable once published, so a query holding one can never
//!   observe torn state mid-step; the epoch is the model's `dyn_steps`.
//! * [`QueryEngine`] — per-member serving replicas restored from the latest
//!   view on demand, with an extracted-column + derived-product cache that
//!   invalidates when the member's epoch moves. Concurrent queries gather
//!   into **one** batched `MlSuite::step_columns` dispatch (the same
//!   `ScratchPool`-backed GEMM path the ML physics uses), against the
//!   per-query reference path [`QueryEngine::serve_one_percol`].
//! * [`ForecastServer`] — the thread-pool front-end: clients `submit` and
//!   get a [`PendingResponse`]; workers drain the queue, forming batches
//!   opportunistically up to `max_batch`.
//! * [`run_ensemble`]/[`spawn_ensemble`] — members sharded across rank
//!   pools via [`run_world`](grist_runtime::run_world), publishing a view
//!   per member per epoch.
//!
//! The stack is instrumented for the live telemetry plane (DESIGN.md §13):
//! [`ForecastServer::start_with_obs`] mints request-scoped trace IDs and
//! records per-query latency / per-batch size into a shared
//! [`ObsPlane`](grist_obs::ObsPlane), re-evaluating its SLO policy after
//! every batch, and [`run_ensemble_observed`] streams per-epoch physics
//! health into the same plane.

pub mod engine;
pub mod ensemble;
pub mod server;
pub mod store;

pub use engine::{
    default_suite, derive, ColumnState, Derived, Product, ProductData, Query, QueryEngine,
    Response, Select, ServeError,
};
pub use ensemble::{
    run_ensemble, run_ensemble_observed, spawn_ensemble, spawn_ensemble_observed, EnsembleConfig,
    EnsembleHandle, PoolTarget, RankReport,
};
pub use server::{ForecastServer, PendingResponse, ServeConfig};
pub use store::{EpochView, SnapshotStore};
