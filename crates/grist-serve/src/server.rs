//! The request front-end: a thread pool draining an mpsc queue, forming
//! batches opportunistically.
//!
//! `submit` is async in the offline-safe sense: it enqueues and returns a
//! [`PendingResponse`] immediately; the caller collects the answer whenever
//! it likes. Each worker blocks for one job, then drains up to
//! `max_batch - 1` more that are already queued — so under heavy traffic
//! batches grow toward `max_batch` and every batch becomes one
//! `ScratchPool`-backed ML dispatch, while an idle server answers a lone
//! query with no added latency.

use crate::engine::{Query, QueryEngine, Response, ServeError};
use grist_dycore::Real;
use grist_obs::ObsPlane;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sunway_sim::{EventKind, Metrics};

/// Front-end sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Largest batch one worker serves in one engine call.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_batch: 32,
        }
    }
}

struct Job {
    query: Query,
    reply: Sender<Result<Response, ServeError>>,
    /// Request-scoped flow ID (0 = untraced; see [`ObsPlane::mint_trace_id`]).
    trace_id: u64,
    /// Enqueue time — the latency clock the telemetry plane reads.
    submitted: Instant,
}

/// A submitted query's future answer.
pub struct PendingResponse {
    rx: Receiver<Result<Response, ServeError>>,
}

impl PendingResponse {
    /// Block until the answer arrives. A worker that disappeared (server
    /// shut down with the job queued) surfaces as `Disconnected`.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// The serving front-end. Dropping it (or calling [`Self::shutdown`])
/// closes the queue and joins the workers.
pub struct ForecastServer {
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    obs: Option<Arc<ObsPlane>>,
    /// The engine's registry (shared handle) — flow begins are recorded on
    /// the submitting thread's lane through it.
    metrics: Metrics,
}

impl ForecastServer {
    /// Start `cfg.workers` threads serving queries against `engine`.
    pub fn start<R: Real>(engine: Arc<QueryEngine<R>>, cfg: ServeConfig) -> Self {
        Self::start_with_obs(engine, cfg, None)
    }

    /// [`Self::start`] wired into a telemetry plane. Each submitted query
    /// gets a minted trace ID (flow-joined to its kernels in the Perfetto
    /// export); each served batch records its size and every member's
    /// queue-to-answer latency, then re-evaluates the SLO policy.
    pub fn start_with_obs<R: Real>(
        engine: Arc<QueryEngine<R>>,
        cfg: ServeConfig,
        obs: Option<Arc<ObsPlane>>,
    ) -> Self {
        assert!(cfg.workers >= 1 && cfg.max_batch >= 1);
        let metrics = engine.substrate().metrics().clone();
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                let obs = obs.clone();
                let max_batch = cfg.max_batch;
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        // Hold the queue lock only while forming the batch;
                        // serving runs with the queue free for peers.
                        let mut batch = Vec::with_capacity(max_batch);
                        {
                            let queue = rx.lock().expect("queue poisoned");
                            match queue.recv() {
                                Ok(job) => batch.push(job),
                                Err(_) => break, // queue closed: shutdown
                            }
                            while batch.len() < max_batch {
                                match queue.try_recv() {
                                    Ok(job) => batch.push(job),
                                    Err(_) => break,
                                }
                            }
                        }
                        let queries: Vec<Query> = batch.iter().map(|j| j.query.clone()).collect();
                        let ids: Vec<u64> = batch.iter().map(|j| j.trace_id).collect();
                        let results = engine.serve_batch_traced(&queries, &ids);
                        served += batch.len() as u64;
                        let tracer = engine.substrate().metrics().tracer();
                        for (job, result) in batch.into_iter().zip(results) {
                            // A client that gave up on its PendingResponse
                            // just drops the answer.
                            let _ = job.reply.send(result);
                            tracer.record_flow(EventKind::FlowEnd, "request", job.trace_id);
                            if let Some(plane) = &obs {
                                plane.record_serve_latency_ns(
                                    job.submitted.elapsed().as_nanos() as u64
                                );
                            }
                        }
                        if let Some(plane) = &obs {
                            plane.record_batch_size(queries.len() as u64);
                            plane.evaluate_slo();
                        }
                    }
                    served
                })
            })
            .collect();
        ForecastServer {
            tx: Some(tx),
            workers,
            obs,
            metrics,
        }
    }

    /// The telemetry plane this server reports into, if any.
    pub fn obs(&self) -> Option<&Arc<ObsPlane>> {
        self.obs.as_ref()
    }

    /// Enqueue a query; returns immediately.
    pub fn submit(&self, query: Query) -> Result<PendingResponse, ServeError> {
        let (reply, rx) = channel();
        let trace_id = self.obs.as_ref().map_or(0, |p| p.mint_trace_id());
        self.metrics
            .tracer()
            .record_flow(EventKind::FlowBegin, "request", trace_id);
        self.tx
            .as_ref()
            .ok_or(ServeError::Disconnected)?
            .send(Job {
                query,
                reply,
                trace_id,
                submitted: Instant::now(),
            })
            .map_err(|_| ServeError::Disconnected)?;
        Ok(PendingResponse { rx })
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn query_blocking(&self, query: Query) -> Result<Response, ServeError> {
        self.submit(query)?.wait()
    }

    /// Close the queue, join every worker, and return the total number of
    /// queries served.
    pub fn shutdown(mut self) -> u64 {
        self.drain()
    }

    fn drain(&mut self) -> u64 {
        drop(self.tx.take());
        self.workers
            .drain(..)
            .map(|w| w.join().expect("serve worker panicked"))
            .sum()
    }
}

impl Drop for ForecastServer {
    fn drop(&mut self) {
        if self.tx.is_some() {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{default_suite, Product};
    use crate::store::{EpochView, SnapshotStore};
    use grist_core::{GristModel, RunConfig};
    use sunway_sim::Substrate;

    fn served_engine(cfg: &RunConfig) -> Arc<QueryEngine<f64>> {
        let store = Arc::new(SnapshotStore::new(1, 2));
        let model = GristModel::<f64>::new(cfg.clone());
        store.publish(EpochView {
            member: 0,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash(),
            checkpoint: model.checkpoint(),
        });
        Arc::new(QueryEngine::new(
            store,
            cfg.clone(),
            Substrate::serial(),
            default_suite(cfg.nlev),
        ))
    }

    #[test]
    fn concurrent_submits_all_answer_and_match_direct_serving() {
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        let server = ForecastServer::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 3,
                max_batch: 8,
            },
        );
        let pending: Vec<(Query, PendingResponse)> = (0..40)
            .map(|i| {
                let product = if i % 2 == 0 {
                    Product::Precip
                } else {
                    Product::T2m
                };
                let q = Query::cell(0, i % engine.n_cells(), product);
                let p = server.submit(q.clone()).unwrap();
                (q, p)
            })
            .collect();
        for (q, p) in pending {
            let served = p.wait().unwrap();
            let direct = engine.serve_one_percol(&q).unwrap();
            assert_eq!(served, direct, "served answer must be bit-identical");
        }
        let served = server.shutdown();
        assert_eq!(served, 40);
        // Batching happened: fewer engine batches than queries.
        let batches = engine.substrate().metrics().counter("serve.batches");
        assert!(batches <= 40, "{batches} batches for 40 queries");
    }

    #[test]
    fn observed_server_records_latency_batches_and_joined_flows() {
        use sunway_sim::EventKind;
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        engine.substrate().metrics().tracer().enable();
        let plane = Arc::new(ObsPlane::default());
        let server = ForecastServer::start_with_obs(
            Arc::clone(&engine),
            ServeConfig {
                workers: 2,
                max_batch: 8,
            },
            Some(Arc::clone(&plane)),
        );
        const N: usize = 24;
        let pending: Vec<PendingResponse> = (0..N)
            .map(|i| {
                server
                    .submit(Query::cell(0, i % engine.n_cells(), Product::Precip))
                    .unwrap()
            })
            .collect();
        for p in pending {
            p.wait().unwrap();
        }
        server.shutdown();

        // Every query got a latency record; batch sizes sum to the total.
        let lat = plane.serve_latency_snapshot();
        assert_eq!(lat.count, N as u64);
        assert!(lat.min > 0, "queue-to-answer latency is nonzero");
        assert_eq!(plane.batch_size_snapshot().sum, N as u64);
        // The SLO ran at least once per batch and generously holds.
        assert!(plane.slo_evals() >= 1);
        let status = plane.last_slo_status().expect("slo evaluated");
        assert!(status.ok(), "smoke SLO breached: {:?}", status.violated);

        // Flow join: one begin + one end per query, and at least one step
        // per query (the serving batch stamps every member's ID).
        let snap = engine.substrate().metrics().tracer().snapshot();
        assert_eq!(snap.count_kind(EventKind::FlowBegin), N);
        assert_eq!(snap.count_kind(EventKind::FlowEnd), N);
        assert!(snap.count_kind(EventKind::FlowStep) >= N);
        // The batch's cache-miss dispatch stamped flow steps on the kernel
        // name, scoping requests down to substrate lanes.
        let dispatch_steps = snap
            .lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.kind == EventKind::FlowStep && e.name != "request")
            .count();
        assert!(dispatch_steps > 0, "no dispatch-level flow steps recorded");
        // And the whole document exports as valid Chrome JSON with flows.
        let stats = sunway_sim::validate_chrome(&snap.to_chrome_json()).unwrap();
        assert_eq!(
            stats.flows,
            snap.count_kind(EventKind::FlowBegin)
                + snap.count_kind(EventKind::FlowStep)
                + snap.count_kind(EventKind::FlowEnd)
        );
    }

    #[test]
    fn unobserved_server_mints_no_ids_and_stays_bit_identical() {
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        let server = ForecastServer::start(Arc::clone(&engine), ServeConfig::default());
        let q = Query::cell(0, 3, Product::T2m);
        let served = server.query_blocking(q.clone()).unwrap();
        assert_eq!(served, engine.serve_one_percol(&q).unwrap());
        assert!(server.obs().is_none());
        server.shutdown();
    }

    #[test]
    fn shutdown_disconnects_cleanly() {
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        let server = ForecastServer::start(engine, ServeConfig::default());
        let p = server.submit(Query::cell(0, 0, Product::T2m)).unwrap();
        assert!(p.wait().is_ok());
        server.shutdown();
    }
}
