//! The request front-end: a thread pool draining an mpsc queue, forming
//! batches opportunistically.
//!
//! `submit` is async in the offline-safe sense: it enqueues and returns a
//! [`PendingResponse`] immediately; the caller collects the answer whenever
//! it likes. Each worker blocks for one job, then drains up to
//! `max_batch - 1` more that are already queued — so under heavy traffic
//! batches grow toward `max_batch` and every batch becomes one
//! `ScratchPool`-backed ML dispatch, while an idle server answers a lone
//! query with no added latency.

use crate::engine::{Query, QueryEngine, Response, ServeError};
use grist_dycore::Real;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// Front-end sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Largest batch one worker serves in one engine call.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            max_batch: 32,
        }
    }
}

struct Job {
    query: Query,
    reply: Sender<Result<Response, ServeError>>,
}

/// A submitted query's future answer.
pub struct PendingResponse {
    rx: Receiver<Result<Response, ServeError>>,
}

impl PendingResponse {
    /// Block until the answer arrives. A worker that disappeared (server
    /// shut down with the job queued) surfaces as `Disconnected`.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }
}

/// The serving front-end. Dropping it (or calling [`Self::shutdown`])
/// closes the queue and joins the workers.
pub struct ForecastServer {
    tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<u64>>,
}

impl ForecastServer {
    /// Start `cfg.workers` threads serving queries against `engine`.
    pub fn start<R: Real>(engine: Arc<QueryEngine<R>>, cfg: ServeConfig) -> Self {
        assert!(cfg.workers >= 1 && cfg.max_batch >= 1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                let max_batch = cfg.max_batch;
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        // Hold the queue lock only while forming the batch;
                        // serving runs with the queue free for peers.
                        let mut batch = Vec::with_capacity(max_batch);
                        {
                            let queue = rx.lock().expect("queue poisoned");
                            match queue.recv() {
                                Ok(job) => batch.push(job),
                                Err(_) => break, // queue closed: shutdown
                            }
                            while batch.len() < max_batch {
                                match queue.try_recv() {
                                    Ok(job) => batch.push(job),
                                    Err(_) => break,
                                }
                            }
                        }
                        let queries: Vec<Query> = batch.iter().map(|j| j.query.clone()).collect();
                        let results = engine.serve_batch(&queries);
                        served += batch.len() as u64;
                        for (job, result) in batch.into_iter().zip(results) {
                            // A client that gave up on its PendingResponse
                            // just drops the answer.
                            let _ = job.reply.send(result);
                        }
                    }
                    served
                })
            })
            .collect();
        ForecastServer {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueue a query; returns immediately.
    pub fn submit(&self, query: Query) -> Result<PendingResponse, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .as_ref()
            .ok_or(ServeError::Disconnected)?
            .send(Job { query, reply })
            .map_err(|_| ServeError::Disconnected)?;
        Ok(PendingResponse { rx })
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn query_blocking(&self, query: Query) -> Result<Response, ServeError> {
        self.submit(query)?.wait()
    }

    /// Close the queue, join every worker, and return the total number of
    /// queries served.
    pub fn shutdown(mut self) -> u64 {
        self.drain()
    }

    fn drain(&mut self) -> u64 {
        drop(self.tx.take());
        self.workers
            .drain(..)
            .map(|w| w.join().expect("serve worker panicked"))
            .sum()
    }
}

impl Drop for ForecastServer {
    fn drop(&mut self) {
        if self.tx.is_some() {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{default_suite, Product};
    use crate::store::{EpochView, SnapshotStore};
    use grist_core::{GristModel, RunConfig};
    use sunway_sim::Substrate;

    fn served_engine(cfg: &RunConfig) -> Arc<QueryEngine<f64>> {
        let store = Arc::new(SnapshotStore::new(1, 2));
        let model = GristModel::<f64>::new(cfg.clone());
        store.publish(EpochView {
            member: 0,
            epoch: model.dyn_steps() as u64,
            state_hash: model.state_hash(),
            checkpoint: model.checkpoint(),
        });
        Arc::new(QueryEngine::new(
            store,
            cfg.clone(),
            Substrate::serial(),
            default_suite(cfg.nlev),
        ))
    }

    #[test]
    fn concurrent_submits_all_answer_and_match_direct_serving() {
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        let server = ForecastServer::start(
            Arc::clone(&engine),
            ServeConfig {
                workers: 3,
                max_batch: 8,
            },
        );
        let pending: Vec<(Query, PendingResponse)> = (0..40)
            .map(|i| {
                let product = if i % 2 == 0 {
                    Product::Precip
                } else {
                    Product::T2m
                };
                let q = Query::cell(0, i % engine.n_cells(), product);
                let p = server.submit(q.clone()).unwrap();
                (q, p)
            })
            .collect();
        for (q, p) in pending {
            let served = p.wait().unwrap();
            let direct = engine.serve_one_percol(&q).unwrap();
            assert_eq!(served, direct, "served answer must be bit-identical");
        }
        let served = server.shutdown();
        assert_eq!(served, 40);
        // Batching happened: fewer engine batches than queries.
        let batches = engine.substrate().metrics().counter("serve.batches");
        assert!(batches <= 40, "{batches} batches for 40 queries");
    }

    #[test]
    fn shutdown_disconnects_cleanly() {
        let cfg = RunConfig::for_level(2, 6);
        let engine = served_engine(&cfg);
        let server = ForecastServer::start(engine, ServeConfig::default());
        let p = server.submit(Query::cell(0, 0, Product::T2m)).unwrap();
        assert!(p.wait().is_ok());
        server.shutdown();
    }
}
