//! The simulation side: ensemble members sharded across rank pools via
//! [`run_world`], publishing an [`EpochView`] per member per epoch.
//!
//! Members are whole models (no halo decomposition here — that lives in
//! `grist-runtime`); rank pool `r` owns members `m` with `m % pools == r`
//! and advances them round-robin. Publishes happen **only between
//! `advance` calls** — the snapshot-isolation rule — and the pools
//! barrier between epochs so no member's published frontier runs more
//! than one epoch ahead of the slowest pool.

use crate::store::{EpochView, SnapshotStore};
use grist_core::{GristModel, RunConfig};
use grist_dycore::Real;
use grist_obs::ObsPlane;
use grist_runtime::run_world;
use std::sync::Arc;
use sunway_sim::Substrate;

/// Which execution target each rank pool builds for its members. Each pool
/// constructs its **own** substrate so rank threads never share a CPE job
/// server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTarget {
    Serial,
    CpeTeams(usize),
}

impl PoolTarget {
    pub fn substrate(self) -> Substrate {
        match self {
            PoolTarget::Serial => Substrate::serial(),
            PoolTarget::CpeTeams(n) => Substrate::cpe_teams(n),
        }
    }
}

/// How to run the ensemble.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Ensemble size (must equal the store's member count).
    pub members: usize,
    /// Rank pools to shard members across.
    pub rank_pools: usize,
    /// Publishes per member *after* the initial epoch-0 view.
    pub epochs: usize,
    /// Dynamics steps advanced between publishes.
    pub dyn_steps_per_epoch: usize,
    /// The shared model configuration.
    pub run: RunConfig,
    /// Relative amplitude of the deterministic per-member initial-condition
    /// perturbation (member 0 is the unperturbed control).
    pub perturb_scale: f64,
    /// Execution target each pool builds.
    pub target: PoolTarget,
}

/// What one rank pool did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankReport {
    pub rank: usize,
    pub members: Vec<usize>,
    pub publishes: u64,
}

fn mix(member: usize, k: usize, c: usize) -> u64 {
    let mut x = (member as u64 + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(((k as u64) << 32) ^ c as u64);
    x ^= x >> 31;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 29;
    x
}

/// Deterministically nudge a member's initial thermodynamic state so the
/// ensemble spreads (member 0 stays the control).
pub fn perturb_member<R: Real>(model: &mut GristModel<R>, member: usize, scale: f64) {
    if member == 0 || scale == 0.0 {
        return;
    }
    let nlev = model.config.nlev;
    let ncells = model.state.theta_m.ncols();
    for k in 0..nlev {
        for c in 0..ncells {
            let eps = scale * ((mix(member, k, c) % 2001) as f64 - 1000.0) / 1000.0;
            // theta_m is precision-sensitive and always f64 (§3.4.2).
            let v = model.state.theta_m.at(k, c);
            model.state.theta_m.set(k, c, v * (1.0 + eps));
        }
    }
}

fn publish_member<R: Real>(store: &SnapshotStore, member: usize, model: &GristModel<R>) {
    store.publish(EpochView {
        member,
        epoch: model.dyn_steps() as u64,
        state_hash: model.state_hash(),
        checkpoint: model.checkpoint(),
    });
}

/// Run the ensemble to completion on the calling thread (blocks until every
/// pool finishes). Returns one report per rank pool.
pub fn run_ensemble<R: Real>(cfg: &EnsembleConfig, store: &Arc<SnapshotStore>) -> Vec<RankReport> {
    run_ensemble_inner::<R>(cfg, store, None)
}

/// [`run_ensemble`] reporting into a telemetry plane: every member advance
/// records an epoch-advance duration, and each member samples its physics
/// health (mass/energy drift, CFL, NaN census) into the plane's
/// `HealthWatch` after every epoch. The integration itself is bitwise
/// unchanged.
pub fn run_ensemble_observed<R: Real>(
    cfg: &EnsembleConfig,
    store: &Arc<SnapshotStore>,
    plane: &Arc<ObsPlane>,
) -> Vec<RankReport> {
    run_ensemble_inner::<R>(cfg, store, Some(plane))
}

fn run_ensemble_inner<R: Real>(
    cfg: &EnsembleConfig,
    store: &Arc<SnapshotStore>,
    plane: Option<&Arc<ObsPlane>>,
) -> Vec<RankReport> {
    assert_eq!(
        cfg.members,
        store.n_members(),
        "store must be sized for the ensemble"
    );
    assert!(cfg.rank_pools >= 1 && cfg.members >= 1);
    assert!(cfg.dyn_steps_per_epoch >= 1);
    let (reports, _stats) = run_world(cfg.rank_pools, |mut ctx| {
        let mine: Vec<usize> = (0..cfg.members)
            .filter(|m| m % cfg.rank_pools == ctx.rank)
            .collect();
        let sub = cfg.target.substrate();
        let mut models: Vec<GristModel<R>> = mine
            .iter()
            .map(|&m| {
                let mut model = GristModel::<R>::with_substrate(cfg.run.clone(), sub.clone());
                perturb_member(&mut model, m, cfg.perturb_scale);
                model
            })
            .collect();
        let mut publishes = 0u64;
        // Epoch 0: every member visible before anyone advances, so queries
        // issued from the first moment of the run always find a view.
        for (model, &m) in models.iter().zip(&mine) {
            publish_member(store, m, model);
            publishes += 1;
        }
        ctx.barrier(1_000);
        let advance_s = cfg.dyn_steps_per_epoch as f64 * cfg.run.dt_dyn;
        for e in 0..cfg.epochs {
            for (model, &m) in models.iter_mut().zip(&mine) {
                match plane {
                    Some(p) => {
                        model.advance_observed(advance_s, p);
                    }
                    None => model.advance(advance_s),
                }
                publish_member(store, m, model);
                publishes += 1;
            }
            // allreduce consumes tag and tag+1, so stride barrier tags by 2.
            ctx.barrier(2_000 + 2 * e as u32);
        }
        RankReport {
            rank: ctx.rank,
            members: mine,
            publishes,
        }
    });
    reports
}

/// A joinable handle to a background ensemble run.
pub struct EnsembleHandle {
    thread: std::thread::JoinHandle<Vec<RankReport>>,
}

impl EnsembleHandle {
    /// Block until the ensemble finishes; panics if it panicked.
    pub fn join(self) -> Vec<RankReport> {
        self.thread.join().expect("ensemble run panicked")
    }
}

/// Run the ensemble on a background thread — the serving side queries the
/// store while this advances, which is exactly the concurrent regime the
/// snapshot-isolation property test exercises.
pub fn spawn_ensemble<R: Real>(cfg: EnsembleConfig, store: Arc<SnapshotStore>) -> EnsembleHandle {
    EnsembleHandle {
        thread: std::thread::spawn(move || run_ensemble::<R>(&cfg, &store)),
    }
}

/// [`spawn_ensemble`] reporting into a telemetry plane (see
/// [`run_ensemble_observed`]).
pub fn spawn_ensemble_observed<R: Real>(
    cfg: EnsembleConfig,
    store: Arc<SnapshotStore>,
    plane: Arc<ObsPlane>,
) -> EnsembleHandle {
    EnsembleHandle {
        thread: std::thread::spawn(move || run_ensemble_observed::<R>(&cfg, &store, &plane)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(members: usize, pools: usize) -> EnsembleConfig {
        EnsembleConfig {
            members,
            rank_pools: pools,
            epochs: 2,
            dyn_steps_per_epoch: 2,
            run: RunConfig::for_level(2, 6),
            perturb_scale: 1e-6,
            target: PoolTarget::Serial,
        }
    }

    #[test]
    fn ensemble_publishes_every_member_every_epoch() {
        let store = Arc::new(SnapshotStore::new(3, 8));
        let reports = run_ensemble::<f64>(&small_cfg(3, 2), &store);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].members, vec![0, 2]);
        assert_eq!(reports[1].members, vec![1]);
        // 3 members × (1 initial + 2 epochs) publishes.
        assert_eq!(store.published_count(), 9);
        let log = store.published_log();
        for member in 0..3 {
            let epochs: Vec<u64> = log
                .iter()
                .filter(|&&(m, _, _)| m == member)
                .map(|&(_, e, _)| e)
                .collect();
            assert_eq!(epochs, vec![0, 2, 4], "member {member} epoch ladder");
            assert!(store.latest(member).is_some());
        }
    }

    #[test]
    fn observed_ensemble_matches_plain_and_feeds_the_plane() {
        let store_plain = Arc::new(SnapshotStore::new(2, 8));
        let store_obs = Arc::new(SnapshotStore::new(2, 8));
        let cfg = small_cfg(2, 2);
        let plane = Arc::new(ObsPlane::default());
        run_ensemble::<f64>(&cfg, &store_plain);
        run_ensemble_observed::<f64>(&cfg, &store_obs, &plane);
        for member in 0..2 {
            assert_eq!(
                store_plain.latest(member).unwrap().state_hash,
                store_obs.latest(member).unwrap().state_hash,
                "member {member}: observation must not perturb the trajectory"
            );
        }
        // 2 members × 2 epochs of observed advances, all sampled.
        assert_eq!(plane.epoch_advance_snapshot().count, 4);
        assert_eq!(plane.watch().ingested(), 4);
        assert_eq!(
            plane.watch().alert_count(),
            0,
            "healthy ensemble must not alert: {:?}",
            plane.watch().alerts()
        );
    }

    #[test]
    fn members_diverge_but_are_reproducible() {
        let store_a = Arc::new(SnapshotStore::new(2, 8));
        let store_b = Arc::new(SnapshotStore::new(2, 8));
        run_ensemble::<f64>(&small_cfg(2, 1), &store_a);
        run_ensemble::<f64>(&small_cfg(2, 2), &store_b); // different sharding
        for member in 0..2 {
            let a = store_a.latest(member).unwrap();
            let b = store_b.latest(member).unwrap();
            assert_eq!(
                a.state_hash, b.state_hash,
                "member {member}: sharding must not change the trajectory"
            );
        }
        let h0 = store_a.latest(0).unwrap().state_hash;
        let h1 = store_a.latest(1).unwrap().state_hash;
        assert_ne!(h0, h1, "perturbed member must diverge from the control");
    }
}
