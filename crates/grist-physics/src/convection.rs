//! Cumulus convection: a Betts–Miller-type convective-adjustment scheme.
//!
//! Where a lifted surface parcel is buoyant (positive CAPE proxy), the scheme
//! relaxes temperature toward the parcel moist adiabat and moisture toward a
//! fixed-relative-humidity reference over a convective timescale, removing
//! the implied column moisture as convective precipitation. Energy put into
//! heating equals the latent energy of the moisture removed (corrected
//! enthalpy closure), so the scheme neither creates nor destroys moist
//! static energy.

use crate::column::consts::{CP, LVAP};
use crate::column::{saturation_mixing_ratio, Column, Tendencies};

/// Convection scheme parameters.
#[derive(Debug, Clone)]
pub struct ConvectionConfig {
    /// Relaxation timescale \[s\].
    pub tau: f64,
    /// Reference relative humidity of the post-convective profile.
    pub rh_ref: f64,
    /// Minimum buoyancy (K) for triggering.
    pub trigger: f64,
}

impl Default for ConvectionConfig {
    fn default() -> Self {
        ConvectionConfig {
            tau: 7200.0,
            rh_ref: 0.8,
            trigger: 0.5,
        }
    }
}

/// Moist-adiabatic parcel ascent from the lowest layer: returns the parcel
/// temperature at every level (pseudo-adiabatic, one fixed-point pass per
/// layer) and the index of the level of neutral buoyancy (0 if the parcel is
/// never buoyant).
fn parcel_profile(col: &Column) -> (Vec<f64>, usize, f64) {
    let nlev = col.nlev();
    let k0 = nlev - 1;
    let mut tp = vec![0.0f64; nlev];
    let mut qp = col.qv[k0];
    tp[k0] = col.t[k0];
    let mut cape_proxy = 0.0f64;
    let mut lnb = k0;
    for k in (0..k0).rev() {
        // Dry-adiabatic step in pressure, then condense excess vapour.
        let kappa = crate::column::consts::KAPPA;
        let mut t_new = tp[k + 1] * (col.p[k] / col.p[k + 1]).powf(kappa);
        let qsat = saturation_mixing_ratio(t_new, col.p[k]);
        if qp > qsat {
            // One linearized condensation step (adequate for an adjustment
            // reference profile).
            let dqsat_dt = qsat * 17.27 * (273.15 - 35.85) / (t_new - 35.85).powi(2);
            let cond = (qp - qsat) / (1.0 + (LVAP / CP) * dqsat_dt);
            t_new += LVAP / CP * cond;
            qp -= cond;
        }
        tp[k] = t_new;
        let buoy = t_new - col.t[k];
        if buoy > 0.0 {
            cape_proxy += buoy * col.dp[k];
            lnb = k;
        }
    }
    (tp, lnb, cape_proxy)
}

/// One convection call. Returns tendencies and convective precipitation
/// \[mm/day\].
pub fn convection(col: &Column, cfg: &ConvectionConfig, _dt: f64) -> (Tendencies, f64) {
    let nlev = col.nlev();
    let mut tend = Tendencies::zeros(nlev);
    let (tp, lnb, cape) = parcel_profile(col);
    // Mean buoyancy over the unstable layer (pressure-weighted).
    let depth: f64 = (lnb..nlev).map(|k| col.dp[k]).sum();
    if depth <= 0.0 || cape / depth.max(1.0) < cfg.trigger {
        return (tend, 0.0);
    }

    // First-guess relaxation tendencies in the convective layer. The
    // humidity reference targets `rh_ref` of saturation at the *environment*
    // temperature (relaxing RH), which dries moist boundary layers; the
    // temperature reference is the parcel moist adiabat.
    let mut dq_int = 0.0; // column moisture change, kg/m²/s
    for k in lnb..nlev {
        let t_ref = tp[k];
        let q_ref = cfg.rh_ref * saturation_mixing_ratio(col.t[k], col.p[k]);
        tend.dt_dt[k] = (t_ref - col.t[k]) / cfg.tau;
        tend.dqv_dt[k] = (q_ref - col.qv[k]) / cfg.tau;
        dq_int += tend.dqv_dt[k] * col.layer_mass(k);
    }
    // Moistening columns don't precipitate — shut the scheme off instead of
    // conjuring water.
    if dq_int >= 0.0 {
        return (Tendencies::zeros(nlev), 0.0);
    }

    // Enthalpy closure: scale the heating so cp∫dT = −L∫dq exactly.
    let heat_int: f64 = (lnb..nlev)
        .map(|k| tend.dt_dt[k] * col.layer_mass(k) * CP)
        .sum();
    let target = -LVAP * dq_int; // positive W/m²
    if heat_int > 0.0 {
        let scale = target / heat_int;
        for k in lnb..nlev {
            tend.dt_dt[k] *= scale;
        }
    } else {
        // Reference profile would cool: distribute the latent heating
        // uniformly in mass instead.
        let m_tot: f64 = (lnb..nlev).map(|k| col.layer_mass(k)).sum();
        for k in lnb..nlev {
            tend.dt_dt[k] = target / (CP * m_tot);
        }
    }

    let precip = -dq_int * 86400.0; // kg/m²/s → mm/day
    (tend, precip)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unstable_column() -> Column {
        let mut col = Column::reference(30);
        // Warm, very moist boundary layer under a cooler free troposphere.
        for k in 26..30 {
            col.t[k] += 4.0;
            col.qv[k] = 0.95 * saturation_mixing_ratio(col.t[k], col.p[k]);
        }
        for k in 10..22 {
            col.t[k] -= 3.0;
        }
        col
    }

    #[test]
    fn unstable_column_triggers_and_rains() {
        let col = unstable_column();
        let (tend, precip) = convection(&col, &ConvectionConfig::default(), 600.0);
        assert!(precip > 1.0, "convective precip = {precip} mm/day");
        assert!(tend.dt_dt.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn stable_column_is_untouched() {
        let mut col = Column::reference(30);
        // Strong inversion and dry boundary layer: no buoyancy.
        for k in 25..30 {
            col.t[k] -= 10.0;
            col.qv[k] *= 0.2;
        }
        let (tend, precip) = convection(&col, &ConvectionConfig::default(), 600.0);
        assert_eq!(precip, 0.0);
        assert!(tend.dt_dt.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn moist_enthalpy_is_closed() {
        let col = unstable_column();
        let (tend, precip) = convection(&col, &ConvectionConfig::default(), 600.0);
        let heat: f64 = (0..30)
            .map(|k| CP * tend.dt_dt[k] * col.layer_mass(k))
            .sum();
        let moist: f64 = (0..30)
            .map(|k| LVAP * tend.dqv_dt[k] * col.layer_mass(k))
            .sum();
        assert!(
            (heat + moist).abs() < 1e-8,
            "enthalpy residual {} (heat {heat}, moist {moist})",
            heat + moist
        );
        assert!((precip / 86400.0 * LVAP - heat).abs() < 1e-8);
    }

    #[test]
    fn convection_dries_the_boundary_layer_and_warms_aloft() {
        let col = unstable_column();
        let (tend, _) = convection(&col, &ConvectionConfig::default(), 600.0);
        assert!(tend.dqv_dt[29] < 0.0, "BL must dry");
        let upper_heat: f64 = tend.dt_dt[10..22].iter().sum();
        assert!(upper_heat > 0.0, "upper levels must warm");
    }

    #[test]
    fn parcel_profile_is_cooler_aloft() {
        let col = Column::reference(30);
        let (tp, _, _) = parcel_profile(&col);
        assert!(tp[0] < tp[29], "parcel must cool with height");
    }
}
