//! Surface-layer scheme (bulk aerodynamic fluxes) and the Noah-MP-lite land
//! surface model (§4.4: "an active land surface model has been coupled to
//! the atmosphere model").
//!
//! Over ocean the skin temperature is the prescribed SST; over land a
//! two-layer soil column plus a prognostic skin temperature closes the
//! surface energy balance against the radiation diagnostics (`gsw`, `glw`)
//! — which is exactly the coupling that makes the ML radiation module's
//! stability matter (§3.2.3).

use crate::column::consts::{CP, LVAP, STEFAN_BOLTZMANN};
use crate::column::{saturation_mixing_ratio, Column};

/// Bulk exchange configuration.
#[derive(Debug, Clone)]
pub struct SurfaceConfig {
    /// Heat/moisture exchange coefficient.
    pub ch: f64,
    /// Minimum wind speed entering the bulk formulas \[m/s\].
    pub wind_floor: f64,
    /// Ocean evaporation efficiency (β factor for land is soil-moisture based).
    pub beta_ocean: f64,
}

impl Default for SurfaceConfig {
    fn default() -> Self {
        SurfaceConfig {
            ch: 1.3e-3,
            wind_floor: 4.0,
            beta_ocean: 1.0,
        }
    }
}

/// Sensible and latent heat fluxes (positive upward, W/m²) from the bulk
/// formulas using the lowest model layer and the skin state.
pub fn bulk_fluxes(col: &Column, cfg: &SurfaceConfig, beta: f64) -> (f64, f64) {
    let k = col.nlev() - 1;
    let wind = (col.u[k] * col.u[k] + col.v[k] * col.v[k])
        .sqrt()
        .max(cfg.wind_floor);
    let rho = col.rho(k);
    let sh = rho * CP * cfg.ch * wind * (col.tskin - col.t[k]);
    let qsat_s = saturation_mixing_ratio(col.tskin, col.p[k]);
    let lh = (rho * LVAP * cfg.ch * wind * beta * (qsat_s - col.qv[k])).max(0.0);
    (sh, lh)
}

/// Noah-MP-lite: skin temperature + two soil layers.
#[derive(Debug, Clone)]
pub struct LandState {
    /// Skin (radiative) temperature \[K\].
    pub tskin: f64,
    /// Soil layer temperatures (top, deep) \[K\].
    pub tsoil: [f64; 2],
    /// Volumetric soil moisture (0–1), controls evaporation efficiency β.
    pub soil_moisture: f64,
}

impl LandState {
    pub fn new(t0: f64) -> Self {
        LandState {
            tskin: t0,
            tsoil: [t0, t0],
            soil_moisture: 0.3,
        }
    }
}

/// Land model configuration.
#[derive(Debug, Clone)]
pub struct LandConfig {
    /// Effective skin heat capacity \[J/m²/K\].
    pub c_skin: f64,
    /// Skin–topsoil conductance \[W/m²/K\].
    pub g_skin: f64,
    /// Topsoil–deep conductance \[W/m²/K\].
    pub g_soil: f64,
    /// Soil layer heat capacities \[J/m²/K\].
    pub c_soil: [f64; 2],
    /// Deep (restoring) temperature \[K\].
    pub t_deep: f64,
    /// Surface emissivity.
    pub emissivity: f64,
    /// Precipitation recharge / evaporative drawdown rate of soil moisture.
    pub moisture_rate: f64,
}

impl Default for LandConfig {
    fn default() -> Self {
        LandConfig {
            c_skin: 2.0e4,
            g_skin: 15.0,
            g_soil: 4.0,
            c_soil: [1.2e6, 6.0e6],
            t_deep: 286.0,
            emissivity: 0.98,
            moisture_rate: 2e-8,
        }
    }
}

/// Advance the land state over `dt` given the surface forcing. Returns the
/// (sensible, latent) fluxes actually delivered to the atmosphere.
#[allow(clippy::too_many_arguments)]
pub fn land_step(
    land: &mut LandState,
    cfg: &LandConfig,
    sfc: &SurfaceConfig,
    col: &Column,
    gsw: f64,
    glw: f64,
    precip_mm_day: f64,
    dt: f64,
) -> (f64, f64) {
    // Evaporation efficiency from soil moisture.
    let beta = (land.soil_moisture / 0.4).clamp(0.0, 1.0);
    let mut col_land = col.clone();
    col_land.tskin = land.tskin;
    let (sh, lh) = bulk_fluxes(&col_land, sfc, beta);

    // Skin energy balance: absorbed SW + down LW − up LW − SH − LH − ground.
    let up_lw = cfg.emissivity * STEFAN_BOLTZMANN * land.tskin.powi(4);
    let ground = cfg.g_skin * (land.tskin - land.tsoil[0]);
    let net = gsw * (1.0 - col.albedo) + cfg.emissivity * glw - up_lw - sh - lh - ground;
    // Semi-implicit skin update (linearize the T⁴ term for stability).
    let dnet_dt = -4.0 * cfg.emissivity * STEFAN_BOLTZMANN * land.tskin.powi(3)
        - cfg.g_skin
        - col.rho(col.nlev() - 1) * CP * sfc.ch * 3.0; // flux stiffness proxy
    land.tskin += dt * net / (cfg.c_skin - dt * dnet_dt);

    // Soil column.
    let f01 = cfg.g_soil * (land.tsoil[0] - land.tsoil[1]);
    land.tsoil[0] += dt * (ground - f01) / cfg.c_soil[0];
    land.tsoil[1] += dt * (f01 - cfg.g_soil * (land.tsoil[1] - cfg.t_deep)) / cfg.c_soil[1];

    // Soil moisture: recharge by precip, drawdown by evaporation.
    let evap_ms = lh / (LVAP * 1000.0); // m/s of liquid water
    land.soil_moisture = (land.soil_moisture
        + dt * (cfg.moisture_rate * precip_mm_day - evap_ms / 0.5))
        .clamp(0.02, 0.45);

    (sh, lh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_skin_drives_upward_fluxes() {
        let mut col = Column::reference(30);
        col.tskin = col.t[29] + 5.0;
        col.u[29] = 5.0;
        let (sh, lh) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        assert!(sh > 0.0, "sh = {sh}");
        assert!(lh > 0.0, "lh = {lh}");
        assert!((5.0..500.0).contains(&sh), "sh magnitude {sh}");
    }

    #[test]
    fn cold_skin_gives_downward_sensible_flux() {
        let mut col = Column::reference(30);
        col.tskin = col.t[29] - 5.0;
        let (sh, _) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        assert!(sh < 0.0);
    }

    #[test]
    fn fluxes_scale_with_wind() {
        // Above the gustiness floor the bulk fluxes are linear in wind.
        let mut col = Column::reference(30);
        col.tskin = col.t[29] + 3.0;
        col.u[29] = 5.0;
        let (sh1, _) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        col.u[29] = 20.0;
        let (sh2, _) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        assert!((sh2 / sh1 - 4.0).abs() < 0.1);
    }

    #[test]
    fn gustiness_floor_caps_the_low_wind_limit() {
        let mut col = Column::reference(30);
        col.tskin = col.t[29] + 3.0;
        col.u[29] = 0.0;
        let (calm, _) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        col.u[29] = SurfaceConfig::default().wind_floor;
        let (floor, _) = bulk_fluxes(&col, &SurfaceConfig::default(), 1.0);
        assert!(
            (calm - floor).abs() < 1e-12,
            "calm fluxes must use the floor wind"
        );
    }

    #[test]
    fn sunlit_land_warms_by_day() {
        let col = Column::reference(30);
        let mut land = LandState::new(col.t[29]);
        let t0 = land.tskin;
        for _ in 0..24 {
            land_step(
                &mut land,
                &LandConfig::default(),
                &SurfaceConfig::default(),
                &col,
                600.0,
                350.0,
                0.0,
                300.0,
            );
        }
        assert!(
            land.tskin > t0 + 0.5,
            "skin only reached {} from {t0}",
            land.tskin
        );
        assert!(land.tskin < t0 + 40.0, "skin runaway: {}", land.tskin);
    }

    #[test]
    fn dark_land_cools_at_night() {
        let col = Column::reference(30);
        let mut land = LandState::new(col.t[29] + 2.0);
        let t0 = land.tskin;
        for _ in 0..24 {
            land_step(
                &mut land,
                &LandConfig::default(),
                &SurfaceConfig::default(),
                &col,
                0.0,
                300.0,
                0.0,
                300.0,
            );
        }
        assert!(
            land.tskin < t0,
            "no nocturnal cooling: {} vs {t0}",
            land.tskin
        );
    }

    #[test]
    fn rain_recharges_soil_dryness_suppresses_evaporation() {
        let col = Column::reference(30);
        let mut wet = LandState::new(290.0);
        wet.soil_moisture = 0.40;
        let mut dry = wet.clone();
        dry.soil_moisture = 0.05;
        let cfg = LandConfig::default();
        let sfc = SurfaceConfig::default();
        let (_, lh_wet) = land_step(&mut wet, &cfg, &sfc, &col, 500.0, 350.0, 0.0, 300.0);
        let (_, lh_dry) = land_step(&mut dry, &cfg, &sfc, &col, 500.0, 350.0, 0.0, 300.0);
        assert!(
            lh_dry < lh_wet,
            "dry soil must evaporate less: {lh_dry} vs {lh_wet}"
        );

        let sm0 = dry.soil_moisture;
        land_step(&mut dry, &cfg, &sfc, &col, 0.0, 300.0, 50.0, 3600.0);
        assert!(dry.soil_moisture > sm0, "precip must recharge soil");
    }

    #[test]
    fn soil_relaxes_toward_deep_temperature() {
        let col = Column::reference(30);
        let mut land = LandState::new(300.0);
        land.tsoil = [300.0, 300.0];
        let cfg = LandConfig::default();
        for _ in 0..2000 {
            land_step(
                &mut land,
                &cfg,
                &SurfaceConfig::default(),
                &col,
                0.0,
                320.0,
                0.0,
                600.0,
            );
        }
        assert!(
            (land.tsoil[1] - cfg.t_deep).abs() < 8.0,
            "deep soil {} should drift toward {}",
            land.tsoil[1],
            cfg.t_deep
        );
    }
}
