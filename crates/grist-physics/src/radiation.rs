//! Band-looped two-stream radiation — the RRTMG stand-in.
//!
//! RRTMG integrates 16 longwave and 14 shortwave g-point bands with
//! layer-by-layer transmission built from exponentials and divisions; it is
//! famously scalar, branchy code that reaches only ~6% of peak FLOPS (§4.7).
//! This module reproduces that *computational physiognomy* — the same band ×
//! layer loop nest, `exp`-heavy transfer, per-band absorber weights — while
//! producing physically plausible heating rates and the two surface
//! diagnostics (`gsw`, `glw`) that the ML radiation module replaces.
//!
//! Every call increments a FLOP ledger so §4.7's "ML radiation needs ~2× the
//! FLOPs of RRTMG but runs at 74–84% of peak vs 6%" comparison can be
//! regenerated quantitatively.

use crate::column::consts::{CP, GRAVITY, SOLAR_CONSTANT, STEFAN_BOLTZMANN};
use crate::column::{Column, SurfaceDiag, Tendencies};

/// Number of longwave bands (matches RRTMG_LW).
pub const N_LW_BANDS: usize = 16;
/// Number of shortwave bands (matches RRTMG_SW).
pub const N_SW_BANDS: usize = 14;

/// Tally of arithmetic performed, for the peak-fraction analysis of §4.7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlopLedger {
    /// add/mul/fma count.
    pub cheap: u64,
    /// exp/div/pow count (expensive, pipeline-serializing).
    pub expensive: u64,
    /// Conditional branches taken in inner loops (vectorization killers).
    pub branches: u64,
}

impl FlopLedger {
    pub fn total(&self) -> u64 {
        self.cheap + self.expensive
    }
    pub fn merge(&mut self, o: &FlopLedger) {
        self.cheap += o.cheap;
        self.expensive += o.expensive;
        self.branches += o.branches;
    }
}

/// Radiation scheme configuration.
#[derive(Debug, Clone)]
pub struct RadiationConfig {
    /// CO₂ volume mixing ratio (sets the background LW optical depth).
    pub co2_ppmv: f64,
    /// Cloud water absorption enhancement.
    pub cloud_k: f64,
}

impl Default for RadiationConfig {
    fn default() -> Self {
        RadiationConfig {
            co2_ppmv: 400.0,
            cloud_k: 120.0,
        }
    }
}

/// Output of one radiation call.
#[derive(Debug, Clone)]
pub struct RadiationResult {
    /// Temperature tendency from radiative flux divergence \[K/s\].
    pub heating: Vec<f64>,
    /// Surface downward shortwave \[W/m²\].
    pub gsw: f64,
    /// Surface downward longwave \[W/m²\].
    pub glw: f64,
    /// Top-of-atmosphere outgoing longwave \[W/m²\].
    pub olr: f64,
    /// FLOPs expended.
    pub ledger: FlopLedger,
}

/// Per-band absorber coefficients, deterministic functions of the band index
/// chosen so the band ensemble spans optically thin to thick.
fn lw_band_k(band: usize) -> (f64, f64, f64) {
    // (k_h2o [m²/kg], k_co2 [m²/kg per ppmv], planck weight)
    let x = band as f64 / (N_LW_BANDS - 1) as f64;
    let k_h2o = 0.004 * (5.0 * x).exp(); // 0.004 .. ~0.6 m²/kg (window → opaque)
                                         // CO₂: one ~15 µm band analogue; column optical depth ≈ 2 at 400 ppmv.
    let k_co2 = 5e-7 * (-((x - 0.4) / 0.12).powi(2)).exp();
    let weight = (1.0 + (4.0 * (x - 0.5)).powi(2)).recip();
    (k_h2o, k_co2, weight)
}

fn sw_band_k(band: usize) -> (f64, f64, f64) {
    // (k_h2o, k_rayleigh, solar weight)
    let x = band as f64 / (N_SW_BANDS - 1) as f64;
    let k_h2o = 0.004 * (5.0 * x).exp();
    let k_ray = 1e-5 * (1.0 - x).powi(3).max(1e-4 * 0.0) + 1e-6;
    let weight = (0.5 + x).recip();
    (k_h2o, k_ray, weight)
}

/// Longwave transfer: emissivity (single up/down sweep per band).
pub fn longwave(col: &Column, cfg: &RadiationConfig) -> RadiationResult {
    let nlev = col.nlev();
    let mut ledger = FlopLedger::default();
    let mut net_flux = vec![0.0f64; nlev + 1]; // + upward

    // Normalize the band weights so Σ w_b = 1 over the Planck spectrum.
    let wsum: f64 = (0..N_LW_BANDS).map(|b| lw_band_k(b).2).sum();
    let mut glw = 0.0;
    let mut olr = 0.0;

    for band in 0..N_LW_BANDS {
        let (k_h2o, k_co2, w) = lw_band_k(band);
        let w = w / wsum;
        // Layer transmittance in this band.
        let mut trans = vec![0.0f64; nlev];
        for k in 0..nlev {
            let absorber =
                k_h2o * col.qv[k] + k_co2 * cfg.co2_ppmv + cfg.cloud_k * col.qc[k] * 0.05;
            let tau = absorber * col.dp[k] / GRAVITY;
            trans[k] = (-1.66 * tau).exp(); // diffusivity factor 1.66
            ledger.cheap += 6;
            ledger.expensive += 1;
        }
        // Downward sweep: flux at interface i (0 = top).
        let mut fdn = vec![0.0f64; nlev + 1];
        for k in 0..nlev {
            let b_layer = w * STEFAN_BOLTZMANN * col.t[k].powi(4);
            fdn[k + 1] = fdn[k] * trans[k] + b_layer * (1.0 - trans[k]);
            ledger.cheap += 7;
            ledger.expensive += 1; // powi(4) as repeated mult counted once expensive-ish
        }
        // Upward sweep from the surface.
        let mut fup = vec![0.0f64; nlev + 1];
        fup[nlev] = w * STEFAN_BOLTZMANN * col.tskin.powi(4);
        for k in (0..nlev).rev() {
            let b_layer = w * STEFAN_BOLTZMANN * col.t[k].powi(4);
            fup[k] = fup[k + 1] * trans[k] + b_layer * (1.0 - trans[k]);
            ledger.cheap += 7;
            ledger.expensive += 1;
        }
        for i in 0..=nlev {
            net_flux[i] += fup[i] - fdn[i];
            ledger.cheap += 2;
        }
        glw += fdn[nlev];
        olr += fup[0];
        ledger.branches += nlev as u64; // per-layer cloud branch in real RRTMG
    }

    // Heating from net-flux divergence: dT/dt = g/(cp dp) · (F_net(i+1) − F_net(i)).
    let mut heating = vec![0.0f64; nlev];
    for k in 0..nlev {
        heating[k] = GRAVITY / (CP * col.dp[k]) * (net_flux[k + 1] - net_flux[k]);
        ledger.cheap += 4;
        ledger.expensive += 1;
    }
    RadiationResult {
        heating,
        gsw: 0.0,
        glw,
        olr,
        ledger,
    }
}

/// Shortwave transfer: direct-beam attenuation with Rayleigh scattering and a
/// single surface reflection.
pub fn shortwave(col: &Column, cfg: &RadiationConfig) -> RadiationResult {
    let nlev = col.nlev();
    let mut ledger = FlopLedger::default();
    let mut heating = vec![0.0f64; nlev];
    let mut gsw = 0.0;

    if col.coszr <= 0.0 {
        ledger.branches += 1;
        return RadiationResult {
            heating,
            gsw,
            glw: 0.0,
            olr: 0.0,
            ledger,
        };
    }
    let mu = col.coszr;
    let wsum: f64 = (0..N_SW_BANDS).map(|b| sw_band_k(b).2).sum();

    for band in 0..N_SW_BANDS {
        let (k_h2o, k_ray, w) = sw_band_k(band);
        let w = w / wsum;
        let toa = SOLAR_CONSTANT * mu * w;
        let mut f = toa;
        let mut absorbed = vec![0.0f64; nlev];
        for k in 0..nlev {
            let tau = (k_h2o * col.qv[k] + k_ray + cfg.cloud_k * col.qc[k]) * col.dp[k] / GRAVITY;
            let t = (-tau / mu).exp();
            let df = f * (1.0 - t);
            // Rayleigh-scattered fraction returns to space; the rest heats.
            let scat_frac = k_ray / (k_h2o * col.qv[k] + k_ray + cfg.cloud_k * col.qc[k] + 1e-30);
            absorbed[k] = df * (1.0 - 0.5 * scat_frac);
            f -= df;
            ledger.cheap += 12;
            ledger.expensive += 3; // exp + 2 div
            ledger.branches += 1;
        }
        gsw += f;
        // Surface-reflected beam absorbed on the way up (one bounce).
        let mut fr = f * col.albedo;
        for k in (0..nlev).rev() {
            let tau = (k_h2o * col.qv[k] + k_ray) * col.dp[k] / GRAVITY;
            let t = (-1.66 * tau).exp();
            absorbed[k] += fr * (1.0 - t);
            fr *= t;
            ledger.cheap += 7;
            ledger.expensive += 1;
        }
        for k in 0..nlev {
            heating[k] += GRAVITY / (CP * col.dp[k]) * absorbed[k];
            ledger.cheap += 4;
            ledger.expensive += 1;
        }
    }
    RadiationResult {
        heating,
        gsw,
        glw: 0.0,
        olr: 0.0,
        ledger,
    }
}

/// Full radiation call: LW + SW combined into one tendency.
pub fn radiation(col: &Column, cfg: &RadiationConfig) -> (Tendencies, SurfaceDiag, FlopLedger) {
    let lw = longwave(col, cfg);
    let sw = shortwave(col, cfg);
    let nlev = col.nlev();
    let mut tend = Tendencies::zeros(nlev);
    for k in 0..nlev {
        tend.dt_dt[k] = lw.heating[k] + sw.heating[k];
    }
    let mut ledger = lw.ledger;
    ledger.merge(&sw.ledger);
    let diag = SurfaceDiag {
        gsw: sw.gsw,
        glw: lw.glw,
        precip: 0.0,
        shflx: 0.0,
        lhflx: 0.0,
        tskin: col.tskin,
        cloud_cover: 0.0,
    };
    (tend, diag, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_longwave_is_earthlike() {
        let col = Column::reference(30);
        let lw = longwave(&col, &RadiationConfig::default());
        // Clear-sky downward LW at the surface: ~250–420 W/m².
        assert!((200.0..450.0).contains(&lw.glw), "glw = {}", lw.glw);
        // OLR: ~180–320 W/m².
        assert!((150.0..350.0).contains(&lw.olr), "olr = {}", lw.olr);
    }

    #[test]
    fn surface_shortwave_is_earthlike_and_tracks_sun() {
        let mut col = Column::reference(30);
        col.coszr = 1.0;
        let sw1 = shortwave(&col, &RadiationConfig::default());
        assert!((500.0..1200.0).contains(&sw1.gsw), "gsw = {}", sw1.gsw);
        col.coszr = 0.3;
        let sw2 = shortwave(&col, &RadiationConfig::default());
        assert!(sw2.gsw < sw1.gsw);
        col.coszr = 0.0;
        let sw3 = shortwave(&col, &RadiationConfig::default());
        assert_eq!(sw3.gsw, 0.0);
    }

    #[test]
    fn clouds_dim_the_surface_and_raise_glw() {
        let mut clear = Column::reference(30);
        clear.coszr = 0.8;
        let mut cloudy = clear.clone();
        for k in 18..24 {
            cloudy.qc[k] = 3e-4;
        }
        let cfg = RadiationConfig::default();
        let (_, d_clear, _) = radiation(&clear, &cfg);
        let (_, d_cloudy, _) = radiation(&cloudy, &cfg);
        assert!(
            d_cloudy.gsw < 0.8 * d_clear.gsw,
            "clouds must block SW: {} vs {}",
            d_cloudy.gsw,
            d_clear.gsw
        );
        assert!(d_cloudy.glw > d_clear.glw, "clouds must emit more LW down");
    }

    #[test]
    fn longwave_cools_the_troposphere() {
        let col = Column::reference(30);
        let lw = longwave(&col, &RadiationConfig::default());
        // Mean tropospheric LW cooling ~0.5–3 K/day.
        let mean_k_per_day: f64 = lw.heating[15..30].iter().sum::<f64>() / 15.0 * 86400.0;
        assert!(
            (-5.0..0.0).contains(&mean_k_per_day),
            "LW cooling {mean_k_per_day} K/day"
        );
    }

    #[test]
    fn more_co2_reduces_olr() {
        let col = Column::reference(30);
        let lo = longwave(
            &col,
            &RadiationConfig {
                co2_ppmv: 280.0,
                ..Default::default()
            },
        );
        let hi = longwave(
            &col,
            &RadiationConfig {
                co2_ppmv: 560.0,
                ..Default::default()
            },
        );
        assert!(
            hi.olr < lo.olr,
            "doubled CO₂ must trap LW: {} vs {}",
            hi.olr,
            lo.olr
        );
    }

    #[test]
    fn ledger_counts_scale_with_bands_and_layers() {
        let c30 = Column::reference(30);
        let c60 = Column::reference(60);
        let cfg = RadiationConfig::default();
        let (_, _, l30) = radiation(&c30, &cfg);
        let (_, _, l60) = radiation(&c60, &cfg);
        let ratio = l60.total() as f64 / l30.total() as f64;
        assert!(
            (1.8..2.2).contains(&ratio),
            "flops should scale ~linearly in nlev: {ratio}"
        );
        assert!(l30.expensive > 0 && l30.branches > 0);
    }

    #[test]
    fn warmer_surface_emits_more() {
        let mut col = Column::reference(30);
        let g1 = longwave(&col, &RadiationConfig::default()).olr;
        col.tskin += 10.0;
        for t in col.t.iter_mut() {
            *t += 10.0;
        }
        let g2 = longwave(&col, &RadiationConfig::default()).olr;
        assert!(g2 > g1);
    }
}
