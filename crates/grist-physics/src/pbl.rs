//! Planetary-boundary-layer scheme: K-profile vertical diffusion of heat and
//! moisture with an implicit (backward-Euler tridiagonal) solve, plus entry
//! of the surface fluxes as the lower boundary condition.

use crate::column::consts::{CP, GRAVITY, LVAP};
use crate::column::{Column, Tendencies};

/// PBL configuration.
#[derive(Debug, Clone)]
pub struct PblConfig {
    /// Eddy diffusivity scale at the surface \[m²/s\].
    pub k0: f64,
    /// PBL depth scale \[m\].
    pub depth: f64,
    /// Free-troposphere background diffusivity \[m²/s\].
    pub k_background: f64,
}

impl Default for PblConfig {
    fn default() -> Self {
        PblConfig {
            k0: 30.0,
            depth: 1200.0,
            k_background: 0.1,
        }
    }
}

/// In-place tridiagonal solve (local copy to keep this crate dependency-free).
fn tridiag(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = b.len();
    let mut cp = vec![0.0; n];
    let mut beta = b[0];
    d[0] /= beta;
    for k in 1..n {
        cp[k] = c[k - 1] / beta;
        beta = b[k] - a[k] * cp[k];
        d[k] = (d[k] - a[k] * d[k - 1]) / beta;
    }
    for k in (0..n - 1).rev() {
        let upd = d[k + 1];
        d[k] -= cp[k + 1] * upd;
    }
}

/// K-profile: `K(z) = k0 (z/h) (1 − z/h)² + K_bg` inside the PBL (stability
/// modulated by the surface buoyancy flux sign), `K_bg` above.
fn k_profile(z: f64, unstable: bool, cfg: &PblConfig) -> f64 {
    if z >= cfg.depth {
        return cfg.k_background;
    }
    let s = z / cfg.depth;
    let shape = s * (1.0 - s) * (1.0 - s);
    let k0 = if unstable { cfg.k0 } else { 0.25 * cfg.k0 };
    cfg.k_background + 4.0 * k0 * shape
}

/// One PBL step: implicit diffusion of T and qv over `dt`, with prescribed
/// surface sensible (`shflx`, W/m²) and latent (`lhflx`, W/m²) fluxes as the
/// bottom boundary condition.
pub fn pbl_diffusion(col: &Column, cfg: &PblConfig, shflx: f64, lhflx: f64, dt: f64) -> Tendencies {
    let nlev = col.nlev();
    let mut tend = Tendencies::zeros(nlev);
    let unstable = shflx > 0.0;

    // Interface diffusivities and geometric factors (interface i between
    // layers i-1 and i, i = 1..nlev-1; top and bottom closed except for the
    // surface flux source).
    let mut kz = vec![0.0f64; nlev + 1];
    for i in 1..nlev {
        let z_i = 0.5 * (col.z[i - 1] + col.z[i]);
        kz[i] = k_profile(z_i, unstable, cfg);
    }

    // Conservative flux-form diffusion in mass coordinates:
    // dX_k/dt = (g/dp_k) [ F_{k+1} − F_k ],  F_i = ρ_i² g K_i (X_{i-1} − X_i)/(z_{i-1} − z_i)
    // discretized implicitly. Build per-variable tridiagonal systems.
    let mut a = vec![0.0f64; nlev];
    let mut b = vec![1.0f64; nlev];
    let mut c = vec![0.0f64; nlev];
    for k in 0..nlev {
        let m_k = col.dp[k] / GRAVITY; // layer mass kg/m²
        if k > 0 {
            let rho_i = 0.5 * (col.rho(k - 1) + col.rho(k));
            let dz = col.z[k - 1] - col.z[k];
            let cond = rho_i * kz[k] / dz; // kg/m²/s exchange coefficient
            a[k] = -dt * cond / m_k;
        }
        if k + 1 < nlev {
            let rho_i = 0.5 * (col.rho(k) + col.rho(k + 1));
            let dz = col.z[k] - col.z[k + 1];
            let cond = rho_i * kz[k + 1] / dz;
            c[k] = -dt * cond / m_k;
        }
        b[k] = 1.0 - a[k] - c[k];
    }

    // Temperature (diffuse dry static energy s = cp T + g z to avoid mixing
    // out the adiabatic lapse rate).
    let mut s: Vec<f64> = (0..nlev)
        .map(|k| CP * col.t[k] + GRAVITY * col.z[k])
        .collect();
    let m_low = col.dp[nlev - 1] / GRAVITY;
    s[nlev - 1] += dt * shflx / m_low; // W/m² → J/kg per layer mass
    tridiag(&a, &b, &c, &mut s);
    for k in 0..nlev {
        tend.dt_dt[k] = ((s[k] - GRAVITY * col.z[k]) / CP - col.t[k]) / dt;
    }

    // Moisture.
    let mut q: Vec<f64> = col.qv.clone();
    q[nlev - 1] += dt * lhflx / (LVAP * m_low);
    tridiag(&a, &b, &c, &mut q);
    for k in 0..nlev {
        tend.dqv_dt[k] = (q[k] - col.qv[k]) / dt;
    }
    tend
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_conserves_energy_and_moisture_without_fluxes() {
        let col = Column::reference(30);
        let dt = 600.0;
        let tend = pbl_diffusion(&col, &PblConfig::default(), 0.0, 0.0, dt);
        let de: f64 = (0..30)
            .map(|k| CP * tend.dt_dt[k] * col.layer_mass(k))
            .sum();
        let dq: f64 = (0..30).map(|k| tend.dqv_dt[k] * col.layer_mass(k)).sum();
        // Budgets close to roundoff relative to the column's energy content.
        assert!(de.abs() < 1e-6, "energy residual {de} W/m²");
        assert!(dq.abs() < 1e-12, "moisture residual {dq}");
    }

    #[test]
    fn surface_heat_flux_warms_the_lowest_layers() {
        let col = Column::reference(30);
        let tend = pbl_diffusion(&col, &PblConfig::default(), 150.0, 0.0, 600.0);
        assert!(tend.dt_dt[29] > 0.0, "lowest layer must warm");
        // Energy input equals the prescribed flux.
        let de: f64 = (0..30)
            .map(|k| CP * tend.dt_dt[k] * col.layer_mass(k))
            .sum();
        assert!(
            (de - 150.0).abs() < 1.0,
            "column energy gain {de} vs 150 W/m²"
        );
    }

    #[test]
    fn latent_flux_moistens_with_closed_budget() {
        let col = Column::reference(30);
        let lh = 100.0;
        let tend = pbl_diffusion(&col, &PblConfig::default(), 0.0, lh, 600.0);
        let dq: f64 = (0..30).map(|k| tend.dqv_dt[k] * col.layer_mass(k)).sum();
        assert!(
            (dq * LVAP - lh).abs() < 1.0,
            "moisture flux {} vs {}",
            dq * LVAP,
            lh
        );
    }

    #[test]
    fn diffusion_smooths_an_inversion() {
        let mut col = Column::reference(30);
        // Sharp moisture spike in the boundary layer.
        col.qv[28] += 5e-3;
        let before = col.qv[28] - 0.5 * (col.qv[27] + col.qv[29]);
        let dt = 1800.0;
        let tend = pbl_diffusion(&col, &PblConfig::default(), 50.0, 0.0, dt);
        let mut c2 = col.clone();
        tend.apply(&mut c2, dt);
        let after = c2.qv[28] - 0.5 * (c2.qv[27] + c2.qv[29]);
        assert!(
            after < before,
            "spike must be smoothed: {before} -> {after}"
        );
    }

    #[test]
    fn stable_regime_diffuses_less() {
        let col = Column::reference(30);
        let t_unstable = pbl_diffusion(&col, &PblConfig::default(), 100.0, 0.0, 600.0);
        let t_stable = pbl_diffusion(&col, &PblConfig::default(), -100.0, 0.0, 600.0);
        // Compare mixing strength away from the surface layer source.
        let mix_u: f64 = t_unstable.dt_dt[20..28].iter().map(|x| x.abs()).sum();
        let mix_s: f64 = t_stable.dt_dt[20..28].iter().map(|x| x.abs()).sum();
        assert!(
            mix_s < mix_u,
            "stable PBL should mix less: {mix_s} vs {mix_u}"
        );
    }

    #[test]
    fn k_profile_shape() {
        let cfg = PblConfig::default();
        assert!(k_profile(2.0 * cfg.depth, true, &cfg) == cfg.k_background);
        let k_mid = k_profile(cfg.depth / 3.0, true, &cfg);
        assert!(k_mid > 10.0, "mid-PBL K = {k_mid}");
        assert!(k_profile(cfg.depth / 3.0, false, &cfg) < k_mid);
    }
}
