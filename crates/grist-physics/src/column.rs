//! Column state and tendency types shared by all physics parameterizations.
//!
//! The physics suite is a *column model* (§3.3.4): every scheme operates on
//! one vertical column independently, which is what makes the suite
//! embarrassingly parallel over cells and trivially mappable to CPEs.
//! Indexing matches the dycore: `k = 0` is the model top, `k = nlev-1` the
//! lowest layer.

/// Thermodynamic constants local to the physics suite (kept numerically
/// identical to `grist_dycore::constants` without creating a dependency).
pub mod consts {
    pub const GRAVITY: f64 = 9.80616;
    pub const CP: f64 = 1004.64;
    pub const RDRY: f64 = 287.04;
    pub const LVAP: f64 = 2.501e6;
    pub const STEFAN_BOLTZMANN: f64 = 5.670374e-8;
    pub const SOLAR_CONSTANT: f64 = 1361.0;
    pub const P0: f64 = 1.0e5;
    pub const KAPPA: f64 = RDRY / CP;
    pub const EPSILON: f64 = 0.622;
}

/// Input column handed from the physics–dynamics coupling interface
/// (§3.2.4 lists U, V, T, Q, P plus `tskin` and `coszr`).
#[derive(Debug, Clone)]
pub struct Column {
    /// Layer mid pressures \[Pa\], increasing with k.
    pub p: Vec<f64>,
    /// Layer pressure thicknesses \[Pa\].
    pub dp: Vec<f64>,
    /// Layer mid heights \[m\].
    pub z: Vec<f64>,
    /// Temperature \[K\].
    pub t: Vec<f64>,
    /// Water-vapour mixing ratio \[kg/kg\].
    pub qv: Vec<f64>,
    /// Cloud-water mixing ratio \[kg/kg\].
    pub qc: Vec<f64>,
    /// Rain-water mixing ratio \[kg/kg\].
    pub qr: Vec<f64>,
    /// Zonal / meridional wind \[m/s\] (cell-reconstructed).
    pub u: Vec<f64>,
    pub v: Vec<f64>,
    /// Skin (surface) temperature \[K\].
    pub tskin: f64,
    /// Cosine of the solar zenith angle (0 at night).
    pub coszr: f64,
    /// Surface albedo.
    pub albedo: f64,
    /// True over ocean (prescribed SST) — land runs the Noah-MP-lite model.
    pub ocean: bool,
}

impl Column {
    pub fn nlev(&self) -> usize {
        self.t.len()
    }

    /// A quiescent tropical-ish test column.
    pub fn reference(nlev: usize) -> Column {
        let ps = 1.0e5;
        let ptop = 225.0;
        let dp_val = (ps - ptop) / nlev as f64;
        let mut p = Vec::with_capacity(nlev);
        let mut z = Vec::with_capacity(nlev);
        let mut t = Vec::with_capacity(nlev);
        let mut qv = Vec::with_capacity(nlev);
        for k in 0..nlev {
            let pk = ptop + (k as f64 + 0.5) * dp_val;
            // Standard-atmosphere-like profile.
            let zk = -7500.0 * (pk / ps).ln();
            let tk = (288.0 - 0.0065 * zk).max(210.0);
            let rh = if zk < 12_000.0 { 0.7 } else { 0.05 };
            p.push(pk);
            z.push(zk);
            t.push(tk);
            qv.push(rh * saturation_mixing_ratio(tk, pk));
        }
        Column {
            dp: vec![dp_val; nlev],
            qc: vec![0.0; nlev],
            qr: vec![0.0; nlev],
            u: vec![0.0; nlev],
            v: vec![0.0; nlev],
            p,
            z,
            t,
            qv,
            tskin: 290.0,
            coszr: 0.5,
            albedo: 0.1,
            ocean: true,
        }
    }

    /// Air density of layer k \[kg/m³\].
    pub fn rho(&self, k: usize) -> f64 {
        self.p[k] / (consts::RDRY * self.t[k])
    }

    /// Mass per unit area of layer k \[kg/m²\].
    pub fn layer_mass(&self, k: usize) -> f64 {
        self.dp[k] / consts::GRAVITY
    }
}

/// Physics tendencies returned to the coupling interface. The sums over all
/// processes are exactly the paper's `Q1` (apparent heat source, here as
/// dT/dt) and `Q2` (apparent moisture sink, as dqv/dt) targets (§3.2.2).
#[derive(Debug, Clone, Default)]
pub struct Tendencies {
    /// Temperature tendency \[K/s\].
    pub dt_dt: Vec<f64>,
    /// Vapour tendency \[kg/kg/s\].
    pub dqv_dt: Vec<f64>,
    /// Cloud water tendency \[kg/kg/s\].
    pub dqc_dt: Vec<f64>,
    /// Rain water tendency \[kg/kg/s\].
    pub dqr_dt: Vec<f64>,
}

impl Tendencies {
    pub fn zeros(nlev: usize) -> Self {
        Tendencies {
            dt_dt: vec![0.0; nlev],
            dqv_dt: vec![0.0; nlev],
            dqc_dt: vec![0.0; nlev],
            dqr_dt: vec![0.0; nlev],
        }
    }

    pub fn accumulate(&mut self, other: &Tendencies) {
        for (a, b) in self.dt_dt.iter_mut().zip(&other.dt_dt) {
            *a += b;
        }
        for (a, b) in self.dqv_dt.iter_mut().zip(&other.dqv_dt) {
            *a += b;
        }
        for (a, b) in self.dqc_dt.iter_mut().zip(&other.dqc_dt) {
            *a += b;
        }
        for (a, b) in self.dqr_dt.iter_mut().zip(&other.dqr_dt) {
            *a += b;
        }
    }

    /// Apply to a column with timestep `dt`, clamping moisture positive.
    pub fn apply(&self, col: &mut Column, dt: f64) {
        for k in 0..col.nlev() {
            col.t[k] += self.dt_dt[k] * dt;
            col.qv[k] = (col.qv[k] + self.dqv_dt[k] * dt).max(0.0);
            col.qc[k] = (col.qc[k] + self.dqc_dt[k] * dt).max(0.0);
            col.qr[k] = (col.qr[k] + self.dqr_dt[k] * dt).max(0.0);
        }
    }
}

/// Surface diagnostic outputs of the suite — `gsw` and `glw` are exactly the
/// two radiation diagnostics the ML radiation module learns (§3.2.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct SurfaceDiag {
    /// Surface downward shortwave \[W/m²\].
    pub gsw: f64,
    /// Surface downward longwave \[W/m²\].
    pub glw: f64,
    /// Surface precipitation rate \[mm/day\].
    pub precip: f64,
    /// Sensible heat flux (up positive) \[W/m²\].
    pub shflx: f64,
    /// Latent heat flux (up positive) \[W/m²\].
    pub lhflx: f64,
    /// Updated skin temperature \[K\].
    pub tskin: f64,
    /// Total cloud cover (max-random overlap), 0–1.
    pub cloud_cover: f64,
}

/// Tetens saturation vapour pressure over liquid water \[Pa\].
pub fn saturation_vapor_pressure(t: f64) -> f64 {
    610.78 * ((17.27 * (t - 273.15)) / (t - 35.85)).exp()
}

/// Saturation mixing ratio \[kg/kg\].
pub fn saturation_mixing_ratio(t: f64, p: f64) -> f64 {
    let es = saturation_vapor_pressure(t).min(0.5 * p);
    consts::EPSILON * es / (p - (1.0 - consts::EPSILON) * es)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // es(0°C) ≈ 611 Pa, es(20°C) ≈ 2339 Pa, es(30°C) ≈ 4246 Pa.
        assert!((saturation_vapor_pressure(273.15) - 610.78).abs() < 1.0);
        assert!((saturation_vapor_pressure(293.15) - 2339.0).abs() < 40.0);
        assert!((saturation_vapor_pressure(303.15) - 4246.0).abs() < 80.0);
    }

    #[test]
    fn qsat_increases_with_temperature_decreases_with_pressure() {
        let q1 = saturation_mixing_ratio(280.0, 9.0e4);
        let q2 = saturation_mixing_ratio(290.0, 9.0e4);
        let q3 = saturation_mixing_ratio(280.0, 7.0e4);
        assert!(q2 > q1);
        assert!(q3 > q1);
    }

    #[test]
    fn reference_column_is_physical() {
        let c = Column::reference(30);
        assert_eq!(c.nlev(), 30);
        assert!(
            c.p.windows(2).all(|w| w[1] > w[0]),
            "p must increase downward"
        );
        assert!(
            c.z.windows(2).all(|w| w[1] < w[0]),
            "z must decrease with k"
        );
        assert!(c.t.iter().all(|&t| (180.0..330.0).contains(&t)));
        assert!(c.qv.iter().all(|&q| (0.0..0.04).contains(&q)));
        // Unsaturated everywhere.
        for k in 0..30 {
            assert!(c.qv[k] <= saturation_mixing_ratio(c.t[k], c.p[k]) + 1e-12);
        }
    }

    #[test]
    fn tendency_apply_clamps_moisture() {
        let mut c = Column::reference(5);
        let mut tend = Tendencies::zeros(5);
        tend.dqv_dt[0] = -1.0; // absurdly strong drying
        tend.apply(&mut c, 100.0);
        assert_eq!(c.qv[0], 0.0);
    }

    #[test]
    fn tendency_accumulate_adds() {
        let mut a = Tendencies::zeros(3);
        let mut b = Tendencies::zeros(3);
        a.dt_dt[1] = 1.0;
        b.dt_dt[1] = 2.5;
        a.accumulate(&b);
        assert_eq!(a.dt_dt[1], 3.5);
        let _ = &mut b;
    }
}
