//! The conventional physics suite driver: radiation (on its own, longer
//! timestep per Table 2), surface exchange + land model, PBL diffusion,
//! convection, and microphysics, composed per column exactly as the
//! physics–dynamics coupling interface of §3.2.4 expects.
//!
//! The suite returns the *summed* tendencies — the `Q1`/`Q2` of §3.2.2 —
//! plus the surface diagnostics (`gsw`, `glw`, precipitation), and keeps a
//! FLOP ledger so the conventional-vs-ML efficiency comparison of §4.7 can
//! be reproduced.

use crate::cloud::{cloud_fraction, total_cloud_cover, CloudConfig};
use crate::column::{Column, SurfaceDiag, Tendencies};
use crate::convection::{convection, ConvectionConfig};
use crate::microphysics::{microphysics, MicroConfig};
use crate::pbl::{pbl_diffusion, PblConfig};
use crate::radiation::{radiation, FlopLedger, RadiationConfig};
use crate::surface::{bulk_fluxes, land_step, LandConfig, LandState, SurfaceConfig};
use sunway_sim::{ColumnsMut, Substrate};

/// Per-column persistent physics state.
#[derive(Debug, Clone)]
pub struct ColumnPhysicsState {
    /// Land model state (`None` over ocean).
    pub land: Option<LandState>,
    /// Radiation heating cached between radiation calls \[K/s\].
    pub rad_heating: Vec<f64>,
    /// Cached surface radiation diagnostics.
    pub gsw: f64,
    pub glw: f64,
    /// Seconds since the last radiation call.
    pub since_rad: f64,
}

impl ColumnPhysicsState {
    pub fn new(nlev: usize, ocean: bool, t0: f64) -> Self {
        ColumnPhysicsState {
            land: if ocean {
                None
            } else {
                Some(LandState::new(t0))
            },
            rad_heating: vec![0.0; nlev],
            gsw: 0.0,
            glw: 0.0,
            since_rad: f64::INFINITY, // force radiation on the first call
        }
    }
}

/// Configuration bundle for the whole suite.
#[derive(Debug, Clone, Default)]
pub struct SuiteConfig {
    pub radiation: RadiationConfig,
    pub cloud: CloudConfig,
    pub micro: MicroConfig,
    pub pbl: PblConfig,
    pub convection: ConvectionConfig,
    pub surface: SurfaceConfig,
    pub land: LandConfig,
}

/// Output of one suite invocation on one column.
#[derive(Debug, Clone)]
pub struct PhysicsOutput {
    /// Summed tendencies of all processes — Q1 (dT/dt) and Q2 (dq/dt) et al.
    pub tend: Tendencies,
    pub diag: SurfaceDiag,
    pub ledger: FlopLedger,
}

/// The conventional physics suite.
#[derive(Debug, Clone, Default)]
pub struct ConventionalSuite {
    pub cfg: SuiteConfig,
    /// Execution target for the per-column fan-out (§3.3.4): serial MPE
    /// fallback or SWGOMP CPE-team offload.
    pub sub: Substrate,
}

impl ConventionalSuite {
    pub fn new(cfg: SuiteConfig) -> Self {
        Self::with_substrate(cfg, Substrate::serial())
    }

    /// Build the suite on an explicit execution target; column dispatches go
    /// through the shared job server and are profiled under
    /// `"physics_columns"`.
    pub fn with_substrate(cfg: SuiteConfig, sub: Substrate) -> Self {
        ConventionalSuite { cfg, sub }
    }

    /// Run all physics on one column over `dt_phy`, refreshing radiation if
    /// `dt_rad` has elapsed (Table 2 uses rad = 3× phy).
    pub fn step_column(
        &self,
        col: &Column,
        state: &mut ColumnPhysicsState,
        dt_phy: f64,
        dt_rad: f64,
    ) -> PhysicsOutput {
        let nlev = col.nlev();
        let mut total = Tendencies::zeros(nlev);
        let mut ledger = FlopLedger::default();

        // --- radiation (long timestep, cached in between) ---
        state.since_rad += dt_phy;
        if state.since_rad >= dt_rad {
            let (rt, rd, rl) = radiation(col, &self.cfg.radiation);
            state.rad_heating.copy_from_slice(&rt.dt_dt);
            state.gsw = rd.gsw;
            state.glw = rd.glw;
            state.since_rad = 0.0;
            ledger.merge(&rl);
        }
        for k in 0..nlev {
            total.dt_dt[k] += state.rad_heating[k];
        }

        // --- surface fluxes (ocean bulk / land model) ---
        let mut working = col.clone();
        let (sh, lh, tskin) = match &mut state.land {
            None => {
                let (sh, lh) = bulk_fluxes(col, &self.cfg.surface, self.cfg.surface.beta_ocean);
                (sh, lh, col.tskin)
            }
            Some(land) => {
                let (sh, lh) = land_step(
                    land,
                    &self.cfg.land,
                    &self.cfg.surface,
                    col,
                    state.gsw,
                    state.glw,
                    0.0, // precip fed back next step
                    dt_phy,
                );
                (sh, lh, land.tskin)
            }
        };
        working.tskin = tskin;

        // --- PBL diffusion driven by the surface fluxes ---
        let pbl_t = pbl_diffusion(&working, &self.cfg.pbl, sh, lh, dt_phy);
        total.accumulate(&pbl_t);
        pbl_t.apply(&mut working, dt_phy);

        // --- convection ---
        let (conv_t, conv_precip) = convection(&working, &self.cfg.convection, dt_phy);
        total.accumulate(&conv_t);
        conv_t.apply(&mut working, dt_phy);

        // --- grid-scale microphysics ---
        let (micro_t, ls_precip) = microphysics(&working, &self.cfg.micro, dt_phy);
        total.accumulate(&micro_t);

        let cover = total_cloud_cover(&cloud_fraction(&working, &self.cfg.cloud));
        let diag = SurfaceDiag {
            gsw: state.gsw,
            glw: state.glw,
            precip: conv_precip + ls_precip,
            shflx: sh,
            lhflx: lh,
            tskin,
            cloud_cover: cover,
        };
        PhysicsOutput {
            tend: total,
            diag,
            ledger,
        }
    }

    /// Run the suite over many columns in parallel (the column model is
    /// embarrassingly parallel — §3.3.4).
    pub fn step_columns(
        &self,
        cols: &[Column],
        states: &mut [ColumnPhysicsState],
        dt_phy: f64,
        dt_rad: f64,
    ) -> Vec<PhysicsOutput> {
        assert_eq!(cols.len(), states.len());
        // Attribute the column sweep to the "physics" trace span.
        let _span = self.sub.span("physics");
        let n = cols.len();
        let mut out: Vec<Option<PhysicsOutput>> = (0..n).map(|_| None).collect();
        {
            let out_cols = ColumnsMut::new(&mut out, 1);
            let st_cols = ColumnsMut::new(states, 1);
            self.sub.run("physics_columns", n, |i| {
                // SAFETY: each column index is dispatched exactly once.
                let s = unsafe { st_cols.at(i) };
                *unsafe { out_cols.at(i) } = Some(self.step_column(&cols[i], s, dt_phy, dt_rad));
            });
        }
        out.into_iter()
            .map(|o| o.expect("column dispatched"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::saturation_mixing_ratio;

    #[test]
    fn suite_produces_bounded_tendencies() {
        let suite = ConventionalSuite::default();
        let col = Column::reference(30);
        let mut st = ColumnPhysicsState::new(30, true, 290.0);
        let out = suite.step_column(&col, &mut st, 600.0, 1800.0);
        // |dT/dt| below 100 K/day everywhere.
        for &x in &out.tend.dt_dt {
            assert!(x.abs() * 86400.0 < 100.0, "dT/dt = {} K/day", x * 86400.0);
        }
        assert!(out.diag.gsw >= 0.0 && out.diag.glw > 0.0);
    }

    #[test]
    fn radiation_is_cached_between_rad_steps() {
        let suite = ConventionalSuite::default();
        let col = Column::reference(30);
        let mut st = ColumnPhysicsState::new(30, true, 290.0);
        let o1 = suite.step_column(&col, &mut st, 600.0, 1800.0);
        assert!(o1.ledger.total() > 0, "first call must run radiation");
        let o2 = suite.step_column(&col, &mut st, 600.0, 1800.0);
        assert_eq!(
            o2.ledger.total(),
            0,
            "second call must reuse cached radiation"
        );
        let o3 = suite.step_column(&col, &mut st, 600.0, 1800.0);
        let o4 = suite.step_column(&col, &mut st, 600.0, 1800.0);
        assert!(
            o3.ledger.total() + o4.ledger.total() > 0,
            "radiation must refresh after dt_rad"
        );
    }

    #[test]
    fn moist_unstable_column_rains_through_the_suite() {
        let suite = ConventionalSuite::default();
        let mut col = Column::reference(30);
        for k in 24..30 {
            col.t[k] += 4.0;
            col.qv[k] = 0.98 * saturation_mixing_ratio(col.t[k], col.p[k]);
        }
        col.u[29] = 6.0;
        let mut st = ColumnPhysicsState::new(30, true, col.t[29] + 2.0);
        let mut total_precip = 0.0;
        for _ in 0..6 {
            let out = suite.step_column(&col, &mut st, 600.0, 1800.0);
            out.tend.apply(&mut col, 600.0);
            total_precip += out.diag.precip;
        }
        assert!(total_precip > 0.5, "suite precip = {total_precip}");
    }

    #[test]
    fn land_column_maintains_diurnal_skin_cycle() {
        let suite = ConventionalSuite::default();
        let mut col = Column::reference(30);
        col.ocean = false;
        let mut st = ColumnPhysicsState::new(30, false, col.t[29]);
        // Day.
        col.coszr = 0.8;
        for _ in 0..12 {
            let out = suite.step_column(&col, &mut st, 600.0, 1800.0);
            out.tend.apply(&mut col, 600.0);
        }
        let t_day = st.land.as_ref().unwrap().tskin;
        // Night.
        col.coszr = 0.0;
        st.since_rad = f64::INFINITY;
        for _ in 0..12 {
            let out = suite.step_column(&col, &mut st, 600.0, 1800.0);
            out.tend.apply(&mut col, 600.0);
        }
        let t_night = st.land.as_ref().unwrap().tskin;
        assert!(
            t_day > t_night,
            "diurnal cycle missing: day {t_day} night {t_night}"
        );
    }

    #[test]
    fn parallel_columns_match_serial() {
        let suite = ConventionalSuite::default();
        let cols: Vec<Column> = (0..16)
            .map(|i| {
                let mut c = Column::reference(30);
                c.coszr = i as f64 / 16.0;
                c
            })
            .collect();
        let mut st_par: Vec<ColumnPhysicsState> = (0..16)
            .map(|_| ColumnPhysicsState::new(30, true, 290.0))
            .collect();
        let mut st_ser = st_par.clone();
        let par = suite.step_columns(&cols, &mut st_par, 600.0, 1800.0);
        let ser: Vec<PhysicsOutput> = cols
            .iter()
            .zip(st_ser.iter_mut())
            .map(|(c, s)| suite.step_column(c, s, 600.0, 1800.0))
            .collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.tend.dt_dt, s.tend.dt_dt);
            assert_eq!(p.diag.precip, s.diag.precip);
        }
    }

    #[test]
    fn ten_day_single_column_integration_is_stable() {
        // A long-run smoke test: the suite must neither blow up nor freeze
        // the column into unphysical temperatures.
        let suite = ConventionalSuite::default();
        let mut col = Column::reference(30);
        let mut st = ColumnPhysicsState::new(30, true, 290.0);
        let dt = 1200.0;
        for step in 0..(10 * 72) {
            // Diurnal cycle of insolation.
            let hour = (step as f64 * dt / 3600.0) % 24.0;
            col.coszr = (0.4 * (std::f64::consts::PI * (hour - 12.0) / 12.0).cos() + 0.3).max(0.0);
            let out = suite.step_column(&col, &mut st, dt, 3600.0);
            out.tend.apply(&mut col, dt);
        }
        for (k, &t) in col.t.iter().enumerate() {
            assert!((170.0..350.0).contains(&t), "lev {k} temperature {t}");
        }
        assert!(col.qv.iter().all(|&q| (0.0..0.05).contains(&q)));
    }
}
