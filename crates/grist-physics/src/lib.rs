//! # grist-physics
//!
//! The conventional physics parameterization suite of the GRIST-rs
//! reproduction: band-looped two-stream radiation (the RRTMG stand-in, with
//! a FLOP ledger for the §4.7 efficiency comparison), Kessler warm-rain
//! microphysics, K-profile PBL diffusion, Betts–Miller convective
//! adjustment, bulk surface fluxes, and a Noah-MP-lite land surface model —
//! all composed per column by [`suite::ConventionalSuite`].

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod cloud;
pub mod column;
pub mod convection;
pub mod gwd;
pub mod microphysics;
pub mod pbl;
pub mod radiation;
pub mod suite;
pub mod surface;

pub use cloud::{cloud_fraction, total_cloud_cover, CloudConfig};
pub use column::{
    saturation_mixing_ratio, saturation_vapor_pressure, Column, SurfaceDiag, Tendencies,
};
pub use gwd::{gravity_wave_drag, GwdConfig};
pub use radiation::{FlopLedger, RadiationConfig};
pub use suite::{ColumnPhysicsState, ConventionalSuite, PhysicsOutput, SuiteConfig};
