//! Kessler-type warm-rain bulk microphysics: saturation adjustment
//! (condensation/evaporation of cloud water), autoconversion and accretion of
//! cloud to rain, rain evaporation, and gravitational sedimentation of rain
//! producing surface precipitation.

use crate::column::consts::{CP, GRAVITY, LVAP};
use crate::column::{saturation_mixing_ratio, Column, Tendencies};

/// Kessler scheme parameters.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Autoconversion rate \[1/s\].
    pub k_auto: f64,
    /// Autoconversion cloud-water threshold \[kg/kg\].
    pub qc0: f64,
    /// Accretion rate coefficient.
    pub k_accr: f64,
    /// Rain terminal fall speed \[m/s\].
    pub v_rain: f64,
    /// Rain evaporation coefficient.
    pub k_evap: f64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            k_auto: 1e-3,
            qc0: 5e-4,
            k_accr: 2.2,
            v_rain: 5.0,
            k_evap: 1e-4,
        }
    }
}

/// One microphysics call over timestep `dt`. Returns tendencies plus the
/// surface precipitation rate \[mm/day\].
pub fn microphysics(col: &Column, cfg: &MicroConfig, dt: f64) -> (Tendencies, f64) {
    let nlev = col.nlev();
    let mut tend = Tendencies::zeros(nlev);

    // Work on provisional values so sequential processes compose within dt.
    let mut qv: Vec<f64> = col.qv.clone();
    let mut qc: Vec<f64> = col.qc.clone();
    let mut qr: Vec<f64> = col.qr.clone();
    let mut t: Vec<f64> = col.t.clone();

    for k in 0..nlev {
        // --- saturation adjustment (condensation / cloud evaporation) ---
        let qsat = saturation_mixing_ratio(t[k], col.p[k]);
        // Linearized adjustment accounting for latent heating feedback:
        // Δq = (qv − qsat) / (1 + L²qsat/(cp Rv T²)); one Newton step.
        let dqsat_dt = qsat * 17.27 * (273.15 - 35.85) / (t[k] - 35.85).powi(2);
        let gamma = 1.0 + (LVAP / CP) * dqsat_dt;
        if qv[k] > qsat {
            let cond = (qv[k] - qsat) / gamma;
            qv[k] -= cond;
            qc[k] += cond;
            t[k] += LVAP / CP * cond;
        } else if qc[k] > 0.0 {
            let deficit = (qsat - qv[k]) / gamma;
            let evap = deficit.min(qc[k]);
            qv[k] += evap;
            qc[k] -= evap;
            t[k] -= LVAP / CP * evap;
        }

        // --- autoconversion ---
        let auto = cfg.k_auto * (qc[k] - cfg.qc0).max(0.0) * dt;
        let auto = auto.min(qc[k]);
        qc[k] -= auto;
        qr[k] += auto;

        // --- accretion (collection of cloud by rain) ---
        if qr[k] > 0.0 && qc[k] > 0.0 {
            let accr = (cfg.k_accr * qc[k] * qr[k].powf(0.875) * dt).min(qc[k]);
            qc[k] -= accr;
            qr[k] += accr;
        }

        // --- rain evaporation in subsaturated air ---
        let qsat2 = saturation_mixing_ratio(t[k], col.p[k]);
        if qv[k] < qsat2 && qr[k] > 0.0 {
            let subsat = (qsat2 - qv[k]) / qsat2;
            let evap = (cfg.k_evap * subsat * qr[k].sqrt() * dt).min(qr[k]);
            qr[k] -= evap;
            qv[k] += evap;
            t[k] -= LVAP / CP * evap;
        }
    }

    // --- sedimentation: upwind fall of qr between layers ---
    // Flux through the bottom of layer k: ρ_k V_r qr_k  [kg/m²/s].
    let mut qr_sed = qr.clone();
    let mut surface_flux = 0.0;
    for k in 0..nlev {
        let mass_k = col.layer_mass(k);
        let out = (col.rho(k) * cfg.v_rain * qr[k] * dt).min(qr[k] * mass_k);
        qr_sed[k] -= out / mass_k;
        if k + 1 < nlev {
            qr_sed[k + 1] += out / col.layer_mass(k + 1);
        } else {
            surface_flux += out; // kg/m² over dt
        }
    }
    let precip_mm_day = surface_flux / dt * 86400.0; // 1 kg/m² = 1 mm

    for k in 0..nlev {
        tend.dt_dt[k] = (t[k] - col.t[k]) / dt;
        tend.dqv_dt[k] = (qv[k] - col.qv[k]) / dt;
        tend.dqc_dt[k] = (qc[k] - col.qc[k]) / dt;
        tend.dqr_dt[k] = (qr_sed[k] - col.qr[k]) / dt;
    }
    let _ = GRAVITY;
    (tend, precip_mm_day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supersaturation_condenses_and_heats() {
        let mut col = Column::reference(20);
        let k = 15;
        col.qv[k] = 1.5 * saturation_mixing_ratio(col.t[k], col.p[k]);
        let (tend, _) = microphysics(&col, &MicroConfig::default(), 300.0);
        assert!(tend.dqv_dt[k] < 0.0, "vapour must condense");
        assert!(
            tend.dqc_dt[k] + tend.dqr_dt[k] > 0.0,
            "condensate must appear"
        );
        assert!(tend.dt_dt[k] > 0.0, "latent heating expected");
    }

    #[test]
    fn water_is_conserved_excluding_precipitation() {
        let mut col = Column::reference(20);
        for k in 10..18 {
            col.qv[k] = 1.2 * saturation_mixing_ratio(col.t[k], col.p[k]);
            col.qc[k] = 1e-3;
            col.qr[k] = 5e-4;
        }
        let dt = 300.0;
        let (tend, precip) = microphysics(&col, &MicroConfig::default(), dt);
        let mut d_total = 0.0; // kg/m²/s
        for k in 0..20 {
            d_total += (tend.dqv_dt[k] + tend.dqc_dt[k] + tend.dqr_dt[k]) * col.layer_mass(k);
        }
        let precip_rate = precip / 86400.0; // mm/day → kg/m²/s
        assert!(
            (d_total + precip_rate).abs() < 1e-12,
            "water budget residual {}",
            d_total + precip_rate
        );
    }

    #[test]
    fn dry_column_produces_no_precip_and_no_tendency() {
        let mut col = Column::reference(20);
        for k in 0..20 {
            col.qv[k] *= 0.3; // far from saturation
        }
        let (tend, precip) = microphysics(&col, &MicroConfig::default(), 300.0);
        assert_eq!(precip, 0.0);
        assert!(tend.dqc_dt.iter().all(|&x| x == 0.0));
        assert!(tend.dqr_dt.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rainy_column_precipitates() {
        let mut col = Column::reference(20);
        col.qr[18] = 2e-3;
        col.qr[19] = 2e-3;
        let (_, precip) = microphysics(&col, &MicroConfig::default(), 300.0);
        assert!(precip > 0.1, "precip = {precip} mm/day");
    }

    #[test]
    fn saturation_adjustment_does_not_overshoot() {
        // After adjustment the layer must not be strongly subsaturated.
        let mut col = Column::reference(20);
        let k = 16;
        col.qv[k] = 1.3 * saturation_mixing_ratio(col.t[k], col.p[k]);
        let dt = 300.0;
        let (tend, _) = microphysics(&col, &MicroConfig::default(), dt);
        let mut c2 = col.clone();
        tend.apply(&mut c2, dt);
        let rh = c2.qv[k] / saturation_mixing_ratio(c2.t[k], c2.p[k]);
        assert!((0.9..1.05).contains(&rh), "post-adjustment RH = {rh}");
    }

    #[test]
    fn moisture_tendencies_never_drive_negative_water() {
        let mut col = Column::reference(20);
        col.qc[5] = 1e-6;
        col.qr[5] = 1e-7;
        let dt = 600.0;
        let (tend, _) = microphysics(&col, &MicroConfig::default(), dt);
        let mut c2 = col.clone();
        tend.apply(&mut c2, dt);
        assert!(c2.qc.iter().all(|&x| x >= 0.0));
        assert!(c2.qr.iter().all(|&x| x >= 0.0));
        assert!(c2.qv.iter().all(|&x| x >= 0.0));
    }
}
