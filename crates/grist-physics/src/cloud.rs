//! Cloud-fraction diagnosis (Sundqvist-type relative-humidity scheme) and
//! the cloud-overlap column quantities the radiation scheme consumes.
//!
//! A full GSRM resolves clouds explicitly; at the coarse resolutions where
//! the ML suite is trained (30 km, §3.2.2), a statistical cloud scheme still
//! closes the radiation budget — this is the conventional-suite component
//! that supplies it.

use crate::column::{saturation_mixing_ratio, Column};

/// Sundqvist scheme parameters.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Critical relative humidity at the surface.
    pub rh_crit_surface: f64,
    /// Critical relative humidity at the model top.
    pub rh_crit_top: f64,
    /// Cloud-water threshold that forces overcast \[kg/kg\].
    pub qc_overcast: f64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            rh_crit_surface: 0.90,
            rh_crit_top: 0.70,
            qc_overcast: 3e-4,
        }
    }
}

/// Layer cloud fractions in \[0, 1\]:
/// `C = 1 − sqrt((1 − RH)/(1 − RH_crit))` above the critical humidity, with
/// a cloud-water override for condensate-bearing layers.
pub fn cloud_fraction(col: &Column, cfg: &CloudConfig) -> Vec<f64> {
    let nlev = col.nlev();
    let ps = col.p[nlev - 1];
    (0..nlev)
        .map(|k| {
            let sigma = col.p[k] / ps;
            let rh_crit = cfg.rh_crit_top + (cfg.rh_crit_surface - cfg.rh_crit_top) * sigma;
            let rh = (col.qv[k] / saturation_mixing_ratio(col.t[k], col.p[k])).clamp(0.0, 1.0);
            let rh_part = if rh <= rh_crit {
                0.0
            } else {
                let x = ((1.0 - rh) / (1.0 - rh_crit).max(1e-9)).clamp(0.0, 1.0);
                1.0 - x.sqrt()
            };
            let qc_part = (col.qc[k] / cfg.qc_overcast).clamp(0.0, 1.0);
            rh_part.max(qc_part)
        })
        .collect()
}

/// Total cloud cover under the maximum-random overlap assumption.
pub fn total_cloud_cover(fractions: &[f64]) -> f64 {
    // Random overlap between maximally-overlapped adjacent blocks:
    // 1 − Π(1 − Cmax_block). Blocks split where fraction drops to 0.
    let mut clear = 1.0;
    let mut block_max: f64 = 0.0;
    for &c in fractions {
        if c <= 0.0 {
            clear *= 1.0 - block_max;
            block_max = 0.0;
        } else {
            block_max = block_max.max(c);
        }
    }
    clear *= 1.0 - block_max;
    1.0 - clear
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dry_column_is_clear() {
        let mut col = Column::reference(20);
        for k in 0..20 {
            col.qv[k] *= 0.3;
        }
        let f = cloud_fraction(&col, &CloudConfig::default());
        assert!(f.iter().all(|&c| c == 0.0));
        assert_eq!(total_cloud_cover(&f), 0.0);
    }

    #[test]
    fn saturated_layer_is_overcast() {
        let mut col = Column::reference(20);
        col.qv[15] = saturation_mixing_ratio(col.t[15], col.p[15]);
        let f = cloud_fraction(&col, &CloudConfig::default());
        assert!(
            (f[15] - 1.0).abs() < 1e-9,
            "saturated layer fraction {}",
            f[15]
        );
    }

    #[test]
    fn condensate_forces_cloud_even_when_subsaturated() {
        let mut col = Column::reference(20);
        col.qv[12] *= 0.5;
        col.qc[12] = 5e-4;
        let f = cloud_fraction(&col, &CloudConfig::default());
        assert!(f[12] >= 0.99);
    }

    #[test]
    fn fraction_monotone_in_humidity() {
        let col0 = Column::reference(20);
        let mut prev = -1.0;
        for scale in [0.85, 0.9, 0.95, 1.0] {
            let mut col = col0.clone();
            let k = 16;
            col.qv[k] = scale * saturation_mixing_ratio(col.t[k], col.p[k]);
            let f = cloud_fraction(&col, &CloudConfig::default());
            assert!(f[16] >= prev, "fraction must grow with RH");
            prev = f[16];
        }
        assert!(prev > 0.3);
    }

    #[test]
    fn overlap_rules() {
        // Single block: max overlap.
        assert!((total_cloud_cover(&[0.3, 0.5, 0.2]) - 0.5).abs() < 1e-12);
        // Two separated blocks: random overlap.
        let c = total_cloud_cover(&[0.5, 0.0, 0.5]);
        assert!((c - 0.75).abs() < 1e-12);
        // Bounds.
        assert_eq!(total_cloud_cover(&[]), 0.0);
        assert!((total_cloud_cover(&[1.0]) - 1.0).abs() < 1e-12);
    }
}
