//! Orographic gravity-wave drag: a Palmer/McFarlane-style scheme damping
//! the low-level flow over subgrid orography and depositing the momentum
//! where the wave saturates aloft. Part of any "conventional physics suite"
//! at hydrostatic resolutions; at storm-resolving (km) scale the waves are
//! explicit, which is one reason GSRM physics suites shrink — the scheme is
//! therefore resolution-gated.

use crate::column::consts::GRAVITY;
use crate::column::Column;

/// GWD configuration.
#[derive(Debug, Clone)]
pub struct GwdConfig {
    /// Efficiency coefficient of the surface stress.
    pub efficiency: f64,
    /// Grid spacing above which the scheme is active \[m\] (resolution
    /// gating: GSRMs resolve these waves).
    pub active_above_dx: f64,
    /// Maximum wind tendency magnitude \[m/s²\] (safety limiter).
    pub tendency_cap: f64,
}

impl Default for GwdConfig {
    fn default() -> Self {
        GwdConfig {
            efficiency: 5e-6,
            active_above_dx: 10_000.0,
            tendency_cap: 30.0 / 86400.0,
        }
    }
}

/// Brunt–Väisälä frequency at layer `k` (one-sided at the boundaries).
fn brunt_vaisala(col: &Column, k: usize) -> f64 {
    let nlev = col.nlev();
    let (ka, kb) = if k == 0 {
        (0, 1)
    } else if k == nlev - 1 {
        (nlev - 2, nlev - 1)
    } else {
        (k - 1, k + 1)
    };
    // θ from T via a local Exner-free approximation: dθ/θ ≈ dT/T + g dz/(cp T)
    let dz = col.z[ka] - col.z[kb];
    if dz <= 0.0 {
        return 1e-2;
    }
    let dtdz = (col.t[ka] - col.t[kb]) / dz;
    let n2 = GRAVITY / col.t[k] * (dtdz + GRAVITY / 1004.64);
    n2.max(1e-6).sqrt()
}

/// GWD tendencies for a column over subgrid orography of standard deviation
/// `sso_std` \[m\], at grid spacing `dx` \[m\]. Returns the zonal and
/// meridional wind-tendency profiles `(du/dt, dv/dt)` \[m/s²\].
pub fn gravity_wave_drag(
    col: &Column,
    sso_std: f64,
    dx: f64,
    cfg: &GwdConfig,
) -> (Vec<f64>, Vec<f64>) {
    let nlev = col.nlev();
    let mut du = vec![0.0; nlev];
    let mut dv = vec![0.0; nlev];
    if dx < cfg.active_above_dx || sso_std <= 0.0 {
        return (du, dv); // resolved explicitly at storm-resolving scales
    }
    let k0 = nlev - 1;
    let speed0 = (col.u[k0] * col.u[k0] + col.v[k0] * col.v[k0]).sqrt();
    if speed0 < 1.0 {
        return (du, dv);
    }
    let n0 = brunt_vaisala(col, k0);
    // Surface wave stress τ = eff · ρ N U h² (per unit area).
    let tau0 = cfg.efficiency * col.rho(k0) * n0 * speed0 * sso_std * sso_std;

    // Propagate upward; deposit stress where the local Froude criterion
    // saturates (wind reversal or weak flow), linearly above 200 hPa.
    let (ux, uy) = (col.u[k0] / speed0, col.v[k0] / speed0);
    let mut tau = tau0;
    let mut deposit = vec![0.0; nlev];
    for k in (0..nlev).rev() {
        let proj = col.u[k] * ux + col.v[k] * uy;
        if proj <= 0.5 {
            // Critical level: dump the remaining stress here.
            deposit[k] += tau;
            tau = 0.0;
            break;
        }
        // Saturation cap: τ_max ∝ ρ proj³ / N (wave breaking).
        let n = brunt_vaisala(col, k);
        let tau_max = cfg.efficiency * col.rho(k) * proj * proj * proj / n.max(1e-4) * 20.0;
        if tau > tau_max {
            deposit[k] += tau - tau_max;
            tau = tau_max;
        }
    }
    if tau > 0.0 {
        deposit[0] += tau; // remainder exits through the top layer
    }
    for k in 0..nlev {
        if deposit[k] > 0.0 {
            let accel = (deposit[k] * GRAVITY / col.dp[k]).min(cfg.tendency_cap);
            du[k] = -accel * ux;
            dv[k] = -accel * uy;
        }
    }
    (du, dv)
}

/// Convenience: fold GWD into a [`crate::column::Tendencies`]-adjacent wind budget check
/// (total momentum removed, N·s/m² per unit area).
pub fn column_momentum_sink(col: &Column, du: &[f64], dv: &[f64]) -> f64 {
    (0..col.nlev())
        .map(|k| (du[k] * du[k] + dv[k] * dv[k]).sqrt() * col.layer_mass(k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windy_column() -> Column {
        let mut col = Column::reference(30);
        for k in 0..30 {
            col.u[k] = 15.0 + 20.0 * (1.0 - k as f64 / 29.0); // westerlies, stronger aloft
        }
        col
    }

    #[test]
    fn drag_opposes_the_low_level_wind() {
        let col = windy_column();
        let (du, dv) = gravity_wave_drag(&col, 400.0, 100_000.0, &GwdConfig::default());
        let sink = column_momentum_sink(&col, &du, &dv);
        assert!(sink > 0.0, "no drag produced");
        // Tendencies must oppose u (westerly) and have no meridional part.
        assert!(du.iter().all(|&d| d <= 0.0));
        assert!(dv.iter().all(|&d| d.abs() < 1e-12));
    }

    #[test]
    fn storm_resolving_grids_disable_the_scheme() {
        let col = windy_column();
        let (du, _) = gravity_wave_drag(&col, 400.0, 3_000.0, &GwdConfig::default());
        assert!(du.iter().all(|&d| d == 0.0), "GWD must be off at km scale");
    }

    #[test]
    fn no_orography_no_drag() {
        let col = windy_column();
        let (du, _) = gravity_wave_drag(&col, 0.0, 100_000.0, &GwdConfig::default());
        assert!(du.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn calm_flow_produces_no_drag() {
        let mut col = windy_column();
        for k in 0..30 {
            col.u[k] = 0.2;
            col.v[k] = 0.0;
        }
        let (du, _) = gravity_wave_drag(&col, 400.0, 100_000.0, &GwdConfig::default());
        assert!(du.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn stress_grows_with_orography_height() {
        let col = windy_column();
        let cfg = GwdConfig::default();
        let (du1, dv1) = gravity_wave_drag(&col, 200.0, 100_000.0, &cfg);
        let (du2, dv2) = gravity_wave_drag(&col, 600.0, 100_000.0, &cfg);
        let s1 = column_momentum_sink(&col, &du1, &dv1);
        let s2 = column_momentum_sink(&col, &du2, &dv2);
        assert!(s2 > 2.0 * s1, "stress must grow ~h²: {s1} vs {s2}");
    }

    #[test]
    fn tendency_cap_bounds_the_acceleration() {
        let col = windy_column();
        let cfg = GwdConfig {
            efficiency: 1e-2,
            ..Default::default()
        }; // absurdly strong
        let (du, dv) = gravity_wave_drag(&col, 1000.0, 100_000.0, &cfg);
        for k in 0..30 {
            let a = (du[k] * du[k] + dv[k] * dv[k]).sqrt();
            assert!(a <= cfg.tendency_cap + 1e-15, "lev {k} accel {a}");
        }
    }
}
