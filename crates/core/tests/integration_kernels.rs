//! The CI kernel-equivalence matrix: one test binary run in all four
//! {scalar-reference, simd} × {sync-dma, double-buffered} cells (selected
//! through the `GRIST_SIMD` / `GRIST_DMA` env vars), asserting that every
//! vectorized or pipelined path is **bitwise identical** to the scalar
//! synchronous oracle.
//!
//! Two layers of coverage:
//!
//! * env-driven — fresh substrates pick up the ambient matrix cell, so
//!   `ambient_mode_matches_the_scalar_sync_oracle` proves whatever cell CI
//!   selected against an explicitly-pinned oracle;
//! * explicit — the full 2×2 grid is swept in-process regardless of env,
//!   so a local `cargo test` covers all cells too.
//!
//! Plus the DMA staging edge cases from the issue: empty input, one chunk,
//! odd chunk counts, non-divisible tails, byte-counter parity between the
//! synchronous and double-buffered pipelines, and a mid-pipeline fault that
//! must drain the in-flight chunk and degrade to the serial path cleanly.

use grist_core::MlSuite;
use grist_dycore::kernels as dk;
use grist_dycore::Field2;
use grist_physics::Column;
use sunway_sim::{
    stage_chunks, CopyStats, DmaMode, FaultPlan, FaultSite, KernelMode, LdmArena, Substrate,
    SunwaySpec,
};

const NLEV: usize = 19;
const NCOLS: usize = 40;

fn columns(n: usize) -> Vec<Column> {
    (0..n)
        .map(|i| {
            let mut c = Column::reference(NLEV);
            c.t[NLEV / 2] += (i % 13) as f64 * 0.4;
            c.qv[NLEV - 1] *= 1.0 + 0.02 * (i % 7) as f64;
            c
        })
        .collect()
}

/// Flatten an ML inference result to bit patterns (no PartialEq on the
/// physics structs; bitwise is the contract anyway).
fn ml_bits(suite: &MlSuite, cols: &[Column]) -> Vec<u64> {
    let mut bits = Vec::new();
    for out in suite.step_columns(cols) {
        for v in out
            .tend
            .dt_dt
            .iter()
            .chain(&out.tend.dqv_dt)
            .chain(&out.tend.dqc_dt)
            .chain(&out.tend.dqr_dt)
        {
            bits.push(v.to_bits());
        }
        for v in [
            out.diag.gsw,
            out.diag.glw,
            out.diag.precip,
            out.diag.shflx,
            out.diag.lhflx,
        ] {
            bits.push(v.to_bits());
        }
    }
    bits
}

/// Run the mesh-free dycore kernels on `sub`; return all outputs as bits.
fn dycore_bits(sub: &Substrate) -> Vec<u64> {
    let (nc, ne) = (90, 120);
    let dpi = Field2::<f64>::from_fn(NLEV, nc, |k, c| 780.0 + (k * 7 + c) as f64 * 0.3);
    let dphi = Field2::<f64>::from_fn(NLEV, nc, |k, c| 2100.0 + ((k + c) % 11) as f64);
    let qv = Field2::<f64>::from_fn(NLEV, nc, |k, c| 1e-3 * (1.0 + ((k * c) % 5) as f64));
    let q0 = Field2::<f64>::zeros(NLEV, nc);
    let theta = Field2::<f64>::from_fn(NLEV, nc, |k, c| 295.0 + ((k + 2 * c) % 17) as f64);
    let pv = Field2::<f64>::from_fn(NLEV, ne, |k, e| 1e-4 * (1.0 + ((k + e) % 9) as f64));
    let vt = Field2::<f64>::from_fn(NLEV, ne, |k, e| ((e * 3 + k) % 13) as f64 - 6.0);
    let mut rrr = Field2::<f64>::zeros(NLEV, nc);
    let mut cor = Field2::<f64>::zeros(NLEV, ne);
    dk::compute_rrr(sub, &dpi, &dphi, &qv, &q0, &q0, &theta, &mut rrr);
    dk::calc_coriolis_term(sub, &pv, &vt, &mut cor);
    rrr.as_slice()
        .iter()
        .chain(cor.as_slice())
        .map(|v| v.to_bits())
        .collect()
}

fn oracle_sub() -> Substrate {
    let sub = Substrate::serial();
    sub.set_kernel_mode(KernelMode::ScalarReference);
    sub.set_dma_mode(DmaMode::Synchronous);
    sub
}

/// Whatever cell `GRIST_SIMD`/`GRIST_DMA` selected for this process must
/// agree bit-for-bit with the pinned scalar/sync oracle — this is the
/// assertion each CI matrix job runs.
#[test]
fn ambient_mode_matches_the_scalar_sync_oracle() {
    let cols = columns(NCOLS);

    let mut ambient = MlSuite::untrained(NLEV, 16, 9);
    ambient.sub = Substrate::cpe_teams(4); // fresh substrate: env-selected modes
    let mut oracle = MlSuite::untrained(NLEV, 16, 9);
    oracle.sub = oracle_sub();
    assert_eq!(
        ml_bits(&ambient, &cols),
        ml_bits(&oracle, &cols),
        "ML inference in mode ({:?}, {:?}) diverges from the scalar/sync oracle",
        ambient.sub.kernel_mode(),
        ambient.sub.dma_mode(),
    );

    assert_eq!(
        dycore_bits(&Substrate::serial()),
        dycore_bits(&oracle_sub()),
        "dycore kernels in the ambient mode diverge from the scalar oracle"
    );
}

/// The full 2×2 matrix, swept explicitly so local runs don't depend on env.
#[test]
fn explicit_mode_grid_is_bitwise_closed() {
    let cols = columns(NCOLS);
    let mut oracle = MlSuite::untrained(NLEV, 16, 9);
    oracle.sub = oracle_sub();
    let want = ml_bits(&oracle, &cols);
    let want_dycore = dycore_bits(&oracle_sub());

    for kernel in [KernelMode::ScalarReference, KernelMode::Simd] {
        for dma in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
            let mut suite = MlSuite::untrained(NLEV, 16, 9);
            suite.sub = Substrate::cpe_teams(4);
            suite.sub.set_kernel_mode(kernel);
            suite.sub.set_dma_mode(dma);
            assert_eq!(
                ml_bits(&suite, &cols),
                want,
                "ML cell ({kernel:?}, {dma:?}) diverges from the oracle"
            );

            let sub = Substrate::serial();
            sub.set_kernel_mode(kernel);
            sub.set_dma_mode(dma);
            assert_eq!(
                dycore_bits(&sub),
                want_dycore,
                "dycore cell ({kernel:?}, {dma:?}) diverges from the oracle"
            );
        }
    }
}

/// Reference computation for the staging tests: a chunk- and
/// index-dependent update, applied without any DMA machinery.
fn staged_reference(data: &mut [f32], chunk: usize) {
    for (k, block) in data.chunks_mut(chunk).enumerate() {
        for (i, v) in block.iter_mut().enumerate() {
            *v = *v * 1.25 + (k * 100 + i) as f32;
        }
    }
}

fn run_staged(mode: DmaMode, len: usize, chunk: usize) -> (Vec<f32>, CopyStats) {
    let mut arena = LdmArena::new(&SunwaySpec::next_gen());
    let stats = CopyStats::default();
    let mut data: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
    stage_chunks(
        mode,
        &mut arena,
        chunk,
        &mut data,
        &stats,
        None,
        |k, buf| {
            for (i, v) in buf.iter_mut().enumerate() {
                *v = *v * 1.25 + (k * 100 + i) as f32;
            }
        },
    )
    .expect("chunks fit the LDM arena");
    (data, stats)
}

/// Empty input, a single chunk, odd chunk counts, and non-divisible tails
/// all produce identical data AND identical DMA byte/transaction counters
/// in both pipeline modes.
#[test]
fn staging_edge_cases_match_with_byte_counter_parity() {
    for (len, chunk) in [
        (0, 8),   // empty: no transfers at all
        (8, 8),   // exactly one chunk
        (24, 8),  // odd chunk count (3)
        (30, 8),  // non-divisible tail (3 full + 6-element tail)
        (7, 8),   // single short chunk
        (65, 16), // longer pipeline with a 1-element tail
    ] {
        let mut want: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
        staged_reference(&mut want, chunk);

        let (sync_data, sync_stats) = run_staged(DmaMode::Synchronous, len, chunk);
        let (db_data, db_stats) = run_staged(DmaMode::DoubleBuffered, len, chunk);

        let key = |v: &[f32]| -> Vec<u32> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(key(&sync_data), key(&want), "sync len={len} chunk={chunk}");
        assert_eq!(key(&db_data), key(&want), "double len={len} chunk={chunk}");
        assert_eq!(
            sync_stats.counts(),
            db_stats.counts(),
            "DMA transaction/byte counters diverge at len={len} chunk={chunk}"
        );
        let n_chunks = len.div_ceil(chunk);
        let (transfers, bytes) = sync_stats.counts();
        assert_eq!(
            transfers,
            2 * n_chunks as u64,
            "one get + one put per chunk"
        );
        assert_eq!(bytes, 2 * len as u64 * 4, "every element moves twice");
    }
}

/// A persistent DMA fault in the middle of the pipeline: the in-flight
/// prefetched chunk is drained (computed and written back), the remainder
/// degrades to main-memory compute, and the result stays bitwise correct in
/// both modes with identical fault accounting.
#[test]
fn mid_pipeline_fault_drains_and_degrades_cleanly() {
    let (len, chunk) = (48, 8); // 6 chunks; chunk 3's get is pinned to fail

    let mut want: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
    staged_reference(&mut want, chunk);

    for mode in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
        // Fresh plan per mode: the per-site key counter advances with every
        // consultation, so a shared plan would pin a different chunk in the
        // second mode.
        let plan = FaultPlan::new(11)
            .pin(FaultSite::Dma, 3)
            .with_max_retries(2);
        let mut arena = LdmArena::new(&SunwaySpec::next_gen());
        let stats = CopyStats::default();
        let mut data: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
        let report = stage_chunks(
            mode,
            &mut arena,
            chunk,
            &mut data,
            &stats,
            Some(&plan),
            |k, buf| {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = *v * 1.25 + (k * 100 + i) as f32;
                }
            },
        )
        .expect("chunks fit the LDM arena");

        let key = |v: &[f32]| -> Vec<u32> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(key(&data), key(&want), "{mode:?}: degraded result differs");
        assert_eq!(report.degraded_at, Some(3), "{mode:?}");
        assert_eq!(report.staged, 3, "{mode:?}: chunks 0..3 went through LDM");
        assert_eq!(report.chunks, 6, "{mode:?}");
        // Chunks 0..3 staged normally: a get and a put each. The failed get
        // and everything after it bypass the DMA engine entirely.
        let (transfers, bytes) = stats.counts();
        assert_eq!(transfers, 2 * 3, "{mode:?}");
        assert_eq!(bytes, 2 * 3 * chunk as u64 * 4, "{mode:?}");
    }
}

/// Double-buffered ML staging meters its DMA traffic through the substrate
/// metrics registry, and still matches the oracle bit-for-bit even while a
/// transient fault plan is armed (retries succeed; nothing degrades).
#[test]
fn ml_staging_under_transient_faults_stays_bitwise_and_metered() {
    let cols = columns(NCOLS);
    let mut oracle = MlSuite::untrained(NLEV, 16, 9);
    oracle.sub = oracle_sub();
    let want = ml_bits(&oracle, &cols);

    let mut suite = MlSuite::untrained(NLEV, 16, 9);
    suite.sub = Substrate::cpe_teams(4);
    suite.sub.set_kernel_mode(KernelMode::Simd);
    suite.sub.set_dma_mode(DmaMode::DoubleBuffered);
    suite.sub.arm_faults(
        FaultPlan::new(5)
            .with_rate(FaultSite::Dma, 0.3)
            .with_max_retries(10),
    );

    assert_eq!(
        ml_bits(&suite, &cols),
        want,
        "transient faults changed bits"
    );

    let snap = suite.sub.metrics().snapshot();
    let dma = snap.counters.get("dma.transactions").copied().unwrap_or(0);
    assert!(
        dma > 0,
        "double-buffered staging must meter DMA transactions"
    );
    assert_eq!(
        snap.counters
            .get("fault.degradations")
            .copied()
            .unwrap_or(0),
        0,
        "transient faults with generous retries must not degrade"
    );
    assert!(
        snap.counters.get("fault.injected").copied().unwrap_or(0) > 0,
        "a 30% fault rate over many gets should inject at least once"
    );
}
