//! History output: snapshotting model fields to self-describing files
//! (a minimal stand-in for GRIST's NetCDF history stream — the paper's
//! artifact writes `grist-*.log` + NetCDF output; this reproduction writes a
//! simple header + little-endian f64 records with exact read-back).
//!
//! The grouped-parallel-I/O path of §3.1.3 is covered by
//! `grist_runtime::pio`; [`HistoryWriter`] is the per-leader serializer those
//! aggregated records flow through.

use crate::model::GristModel;
use grist_dycore::Real;
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// One named 1-D record (per-cell surface field or flattened 2-D field).
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    pub name: String,
    pub data: Vec<f64>,
}

/// A history snapshot: model time plus records.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub time_s: f64,
    pub records: Vec<HistoryRecord>,
}

impl Snapshot {
    /// Capture the standard surface diagnostics of a model.
    pub fn capture<R: Real>(model: &GristModel<R>) -> Snapshot {
        let mut records = vec![
            HistoryRecord {
                name: "ps".into(),
                data: model.surface_pressure(),
            },
            HistoryRecord {
                name: "precip_accum".into(),
                data: model.precip_accum.clone(),
            },
        ];
        records.push(HistoryRecord {
            name: "gsw".into(),
            data: model.last_diag.iter().map(|d| d.gsw).collect(),
        });
        records.push(HistoryRecord {
            name: "glw".into(),
            data: model.last_diag.iter().map(|d| d.glw).collect(),
        });
        records.push(HistoryRecord {
            name: "tskin".into(),
            data: model.surface.tskin.clone(),
        });
        Snapshot {
            time_s: model.time_s,
            records,
        }
    }

    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.data.as_slice())
    }
}

/// Writes snapshots under a directory, one file per snapshot.
#[derive(Debug)]
pub struct HistoryWriter {
    pub dir: PathBuf,
    pub prefix: String,
    count: usize,
}

impl HistoryWriter {
    pub fn new(dir: impl Into<PathBuf>, prefix: impl Into<String>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(HistoryWriter {
            dir,
            prefix: prefix.into(),
            count: 0,
        })
    }

    /// Write one snapshot; returns the file path.
    pub fn write(&mut self, snap: &Snapshot) -> std::io::Result<PathBuf> {
        let path = self
            .dir
            .join(format!("{}-{:05}.grist", self.prefix, self.count));
        self.count += 1;
        let mut f = fs::File::create(&path)?;
        writeln!(f, "GRIST-RS-HISTORY v1")?;
        writeln!(f, "time_s {}", snap.time_s)?;
        writeln!(f, "records {}", snap.records.len())?;
        for r in &snap.records {
            writeln!(f, "field {} {}", r.name, r.data.len())?;
        }
        writeln!(f, "data")?;
        for r in &snap.records {
            let bytes: Vec<u8> = r.data.iter().flat_map(|v| v.to_le_bytes()).collect();
            f.write_all(&bytes)?;
        }
        Ok(path)
    }
}

/// Read a snapshot file back (exact round-trip of [`HistoryWriter::write`]).
pub fn read_snapshot(path: &Path) -> std::io::Result<Snapshot> {
    let f = fs::File::open(path)?;
    let mut reader = BufReader::new(f);
    let mut line = String::new();
    let mut read_line = |reader: &mut BufReader<fs::File>| -> std::io::Result<String> {
        line.clear();
        reader.read_line(&mut line)?;
        Ok(line.trim_end().to_string())
    };
    let magic = read_line(&mut reader)?;
    if magic != "GRIST-RS-HISTORY v1" {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad magic",
        ));
    }
    let time_line = read_line(&mut reader)?;
    let time_s: f64 = time_line
        .strip_prefix("time_s ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad time"))?;
    let n_line = read_line(&mut reader)?;
    let n: usize = n_line
        .strip_prefix("records ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad count"))?;
    let mut metas = Vec::with_capacity(n);
    for _ in 0..n {
        let fl = read_line(&mut reader)?;
        let mut parts = fl.split_whitespace();
        let tag = parts.next();
        if tag != Some("field") {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad field line",
            ));
        }
        let name = parts.next().unwrap_or("").to_string();
        let len: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad len"))?;
        metas.push((name, len));
    }
    let data_tag = read_line(&mut reader)?;
    if data_tag != "data" {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "missing data tag",
        ));
    }
    let mut records = Vec::with_capacity(n);
    for (name, len) in metas {
        let mut buf = vec![0u8; len * 8];
        reader.read_exact(&mut buf)?;
        let data = buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        records.push(HistoryRecord { name, data });
    }
    Ok(Snapshot { time_s, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grist-history-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let dir = tmpdir("roundtrip");
        let snap = Snapshot {
            time_s: 1234.5,
            records: vec![
                HistoryRecord {
                    name: "a".into(),
                    data: vec![1.0, -2.5, 3.25],
                },
                HistoryRecord {
                    name: "b".into(),
                    data: vec![f64::MIN_POSITIVE, 1e300],
                },
            ],
        };
        let mut w = HistoryWriter::new(&dir, "test").unwrap();
        let path = w.write(&snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, snap);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_numbers_files_sequentially() {
        let dir = tmpdir("seq");
        let snap = Snapshot {
            time_s: 0.0,
            records: vec![],
        };
        let mut w = HistoryWriter::new(&dir, "run").unwrap();
        let p0 = w.write(&snap).unwrap();
        let p1 = w.write(&snap).unwrap();
        assert!(p0.to_string_lossy().contains("run-00000"));
        assert!(p1.to_string_lossy().contains("run-00001"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn model_capture_contains_the_standard_fields() {
        let mut m = crate::model::GristModel::<f64>::new(RunConfig::for_level(2, 8));
        m.advance(m.config.dt_phy);
        let snap = Snapshot::capture(&m);
        for name in ["ps", "precip_accum", "gsw", "glw", "tskin"] {
            let rec = snap.get(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(rec.len(), m.n_cells());
        }
        assert!(snap.get("ps").unwrap().iter().all(|&p| p > 5.0e4));
    }

    #[test]
    fn capture_write_read_through_model() {
        let dir = tmpdir("model");
        let mut m = crate::model::GristModel::<f64>::new(RunConfig::for_level(2, 8));
        m.advance(m.config.dt_phy);
        let snap = Snapshot::capture(&m);
        let mut w = HistoryWriter::new(&dir, "aqua").unwrap();
        let path = w.write(&snap).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.time_s, m.time_s);
        assert_eq!(back.get("ps").unwrap(), snap.get("ps").unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.grist");
        fs::write(&path, b"NOT A HISTORY FILE").unwrap();
        assert!(read_snapshot(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
