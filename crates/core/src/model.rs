//! The coupled GRIST-rs model driver: dynamical core + physics suite
//! (conventional or ML) advancing together on the Table-2 cadence
//! (dyn < trac < phy < rad).

use crate::checkpoint::Checkpoint;
use crate::config::RunConfig;
use crate::coupling::{apply_tendencies, extract_columns, SurfaceState};
use crate::health::{HealthReport, RunState};
use crate::mlsuite::MlSuite;
use grist_dycore::hevi::NhConfig;
use grist_dycore::{NhSolver, NhState, Real, VerticalCoord};
use grist_mesh::HexMesh;
use grist_physics::suite::SuiteConfig;
use grist_physics::{ColumnPhysicsState, ConventionalSuite, SurfaceDiag, Tendencies};
use sunway_sim::{
    format_kernel_report, KernelReportRow, Metrics, MetricsSnapshot, RooflineInputs, Substrate,
    TraceReport,
};

/// Which side of the dyn step a [`GristModel`] halo hook is called on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloPhase {
    /// Before the solver step: begin the async exchange (pack + send) so
    /// the messages are in flight during interior compute.
    Begin,
    /// After the solver step: complete the exchange (receive + unpack).
    Complete,
}

/// Per-step halo callback of a multi-rank [`GristModel`] driver: owns the
/// rank context and the in-flight [`grist_runtime::PendingExchange`]
/// between the [`HaloPhase::Begin`] and [`HaloPhase::Complete`] calls.
pub type HaloHook<R> = Box<dyn FnMut(HaloPhase, &mut NhState<R>) + Send>;

/// Which physics suite is coupled (Table 3's "Physics" column).
#[allow(clippy::large_enum_variant)] // one engine per model; size is irrelevant
pub enum PhysicsEngine {
    Conventional {
        suite: ConventionalSuite,
        states: Vec<ColumnPhysicsState>,
    },
    Ml(Box<MlSuite>),
    /// The paper's "AI-enhanced" blend: both suites run on the same columns
    /// and their tendencies/diagnostics are averaged 50/50 — the ML emulator
    /// corrects the conventional suite rather than replacing it.
    Hybrid {
        suite: ConventionalSuite,
        states: Vec<ColumnPhysicsState>,
        ml: Box<MlSuite>,
    },
}

impl PhysicsEngine {
    pub fn label(&self) -> &'static str {
        match self {
            PhysicsEngine::Conventional { .. } => "Conventional",
            PhysicsEngine::Ml(_) => "ML-physics",
            PhysicsEngine::Hybrid { .. } => "Hybrid",
        }
    }
}

/// 50/50 blend of two physics outputs (tendency vectors element-wise, every
/// surface diagnostic scalar).
fn blend_half(
    a: (Tendencies, SurfaceDiag),
    b: (Tendencies, SurfaceDiag),
) -> (Tendencies, SurfaceDiag) {
    let (ta, da) = a;
    let (tb, db) = b;
    let mix = |x: &[f64], y: &[f64]| -> Vec<f64> {
        x.iter().zip(y).map(|(&p, &q)| 0.5 * (p + q)).collect()
    };
    let tend = Tendencies {
        dt_dt: mix(&ta.dt_dt, &tb.dt_dt),
        dqv_dt: mix(&ta.dqv_dt, &tb.dqv_dt),
        dqc_dt: mix(&ta.dqc_dt, &tb.dqc_dt),
        dqr_dt: mix(&ta.dqr_dt, &tb.dqr_dt),
    };
    let diag = SurfaceDiag {
        gsw: 0.5 * (da.gsw + db.gsw),
        glw: 0.5 * (da.glw + db.glw),
        precip: 0.5 * (da.precip + db.precip),
        shflx: 0.5 * (da.shflx + db.shflx),
        lhflx: 0.5 * (da.lhflx + db.lhflx),
        tskin: 0.5 * (da.tskin + db.tskin),
        cloud_cover: 0.5 * (da.cloud_cover + db.cloud_cover),
    };
    (tend, diag)
}

/// The coupled model.
pub struct GristModel<R: Real> {
    pub config: RunConfig,
    pub solver: NhSolver<R>,
    pub state: NhState<R>,
    pub surface: SurfaceState,
    pub physics: PhysicsEngine,
    /// Cell latitudes/longitudes \[rad\].
    pub lats: Vec<f64>,
    pub lons: Vec<f64>,
    /// Model time \[s\] since initialization.
    pub time_s: f64,
    /// Accumulated surface precipitation \[mm\] per cell.
    pub precip_accum: Vec<f64>,
    /// Most recent surface diagnostics per cell.
    pub last_diag: Vec<SurfaceDiag>,
    /// Most recent physics tendencies per cell (the Q1/Q2 residuals handed
    /// to the training pipeline).
    pub last_tendencies: Vec<Tendencies>,
    /// Solar declination used for the insolation cycle \[rad\].
    pub declination: f64,
    pub(crate) dyn_steps_taken: usize,
    /// Last checkpoint captured by [`Self::advance_resilient`] — the state
    /// the recovery ladder rolls back to when a health scan finds corruption.
    pub(crate) last_checkpoint: Option<Checkpoint>,
    /// Multi-rank halo hook called around every [`Self::step_dyn`]
    /// (see [`Self::set_halo_hook`]). `None` for single-rank runs.
    halo_hook: Option<HaloHook<R>>,
}

/// What one [`GristModel::advance_resilient`] window did: how often the
/// recovery ladder fired and where the run ended up.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The window finished with a non-corrupt state.
    pub completed: bool,
    /// Checkpoint restores performed.
    pub restores: u32,
    /// Checkpoints captured.
    pub checkpoints: u64,
    /// Health report at the end of the window.
    pub final_health: HealthReport,
}

impl<R: Real> GristModel<R> {
    /// Build an aqua-planet model at the configured grid level, at rest,
    /// running every hot loop serially on the calling thread.
    pub fn new(config: RunConfig) -> Self {
        Self::with_substrate(config, Substrate::serial())
    }

    /// Build the model on an explicit execution target (§3.3). The dycore
    /// solver and the physics suite share the substrate's job server and
    /// profiler, so [`Self::kernel_report`] covers the whole coupled step.
    pub fn with_substrate(config: RunConfig, sub: Substrate) -> Self {
        let mesh = HexMesh::build(config.level);
        let lats: Vec<f64> = mesh.cell_xyz.iter().map(|p| p.lat()).collect();
        let lons: Vec<f64> = mesh.cell_xyz.iter().map(|p| p.lon()).collect();
        let nc = mesh.n_cells();
        let solver = NhSolver::with_substrate(
            mesh,
            VerticalCoord::uniform(config.nlev),
            NhConfig {
                ntracers: 3,
                ..Default::default()
            },
            sub.clone(),
        );
        let mut state = solver.isothermal_rest_state(config.t_ref, config.ps_ref);
        // Moisten the lower troposphere (qv tracer) for a live hydrology.
        let nlev = config.nlev;
        for c in 0..nc {
            for k in 0..nlev {
                let frac = (k as f64 + 0.5) / nlev as f64; // 0 top → 1 surface
                let q = 0.016 * frac.powi(3) * lats[c].cos().powi(2) + 1e-6;
                state.tracers[0].set(k, c, R::from_f64(q));
            }
        }
        let surface = SurfaceState::aqua_planet(&lats);
        let physics = if config.ml_physics {
            let mut suite = MlSuite::untrained(config.nlev, 32, 2024);
            suite.sub = sub.clone();
            // Same surface-layer parameters the conventional suite would
            // run with, so switching physics engines doesn't silently
            // change the bulk-flux diagnostic.
            suite.surface = SuiteConfig::default().surface;
            PhysicsEngine::Ml(Box::new(suite))
        } else {
            let states = (0..nc)
                .map(|c| ColumnPhysicsState::new(config.nlev, surface.ocean[c], surface.tskin[c]))
                .collect();
            PhysicsEngine::Conventional {
                suite: ConventionalSuite::with_substrate(SuiteConfig::default(), sub.clone()),
                states,
            }
        };
        GristModel {
            solver,
            state,
            surface,
            physics,
            lats,
            lons,
            time_s: 0.0,
            precip_accum: vec![0.0; nc],
            last_diag: vec![SurfaceDiag::default(); nc],
            last_tendencies: vec![Tendencies::default(); nc],
            declination: 0.0,
            config,
            dyn_steps_taken: 0,
            last_checkpoint: None,
            halo_hook: None,
        }
    }

    /// Install the multi-rank halo hook: called with [`HaloPhase::Begin`]
    /// immediately before each dyn-step's solver integration and with
    /// [`HaloPhase::Complete`] immediately after, so a rank driver can
    /// overlap its gathered halo exchange (begin: pack + send; complete:
    /// receive + unpack) with the step's interior compute.
    pub fn set_halo_hook(&mut self, hook: HaloHook<R>) {
        self.halo_hook = Some(hook);
    }

    /// Remove the halo hook (single-rank operation).
    pub fn clear_halo_hook(&mut self) {
        self.halo_hook = None;
    }

    /// Add an idealized continent (rebuilding the per-column land states
    /// for the conventional suite).
    pub fn add_continent(&mut self, lat_range: (f64, f64), lon_range: (f64, f64)) {
        let (lats, lons) = (self.lats.clone(), self.lons.clone());
        self.surface
            .add_continent(&lats, &lons, lat_range, lon_range);
        if let PhysicsEngine::Conventional { states, .. } | PhysicsEngine::Hybrid { states, .. } =
            &mut self.physics
        {
            for (c, st) in states.iter_mut().enumerate() {
                *st = ColumnPhysicsState::new(
                    self.config.nlev,
                    self.surface.ocean[c],
                    self.surface.tskin[c],
                );
            }
        }
    }

    /// Replace the physics engine (e.g. with a trained [`MlSuite`]). The
    /// suite is re-homed onto the model's substrate so its column dispatches
    /// keep feeding the shared kernel profiler.
    pub fn set_ml_suite(&mut self, mut suite: MlSuite) {
        assert_eq!(suite.nlev, self.config.nlev);
        suite.sub = self.solver.sub.clone();
        self.physics = PhysicsEngine::Ml(Box::new(suite));
    }

    /// Switch to the hybrid engine: the conventional suite and an untrained
    /// [`MlSuite`] (seeded as in [`Self::with_substrate`]) both run every
    /// physics step and their outputs are averaged 50/50. Column states are
    /// rebuilt from the current surface.
    pub fn set_hybrid_physics(&mut self) {
        let sub = self.solver.sub.clone();
        let mut ml = MlSuite::untrained(self.config.nlev, 32, 2024);
        ml.sub = sub.clone();
        ml.surface = SuiteConfig::default().surface;
        let states = (0..self.n_cells())
            .map(|c| {
                ColumnPhysicsState::new(
                    self.config.nlev,
                    self.surface.ocean[c],
                    self.surface.tskin[c],
                )
            })
            .collect();
        self.physics = PhysicsEngine::Hybrid {
            suite: ConventionalSuite::with_substrate(SuiteConfig::default(), sub),
            states,
            ml: Box::new(ml),
        };
    }

    /// The execution substrate shared by the dycore and the physics suite.
    pub fn substrate(&self) -> &Substrate {
        &self.solver.sub
    }

    /// Per-kernel wall time and invocation counts accumulated over every
    /// dispatch since construction (or the last [`Self::reset_kernel_report`])
    /// — the Fig. 9-style measured table, hottest kernel first.
    pub fn kernel_report(&self) -> Vec<KernelReportRow> {
        self.solver.sub.kernel_report()
    }

    /// [`Self::kernel_report`] formatted as an aligned text table.
    pub fn kernel_report_text(&self) -> String {
        format_kernel_report(&self.kernel_report())
    }

    /// Clear the accumulated kernel profile (e.g. after spin-up, before a
    /// measured `measure_sdpd` window).
    pub fn reset_kernel_report(&self) {
        self.solver.sub.reset_profile();
    }

    /// The shared observability registry behind [`Self::kernel_report`]:
    /// span-qualified kernel stats, trace spans, and hardware-model counters
    /// (`dma.*`, `ldcache.*`, `halo.*`, …).
    pub fn metrics(&self) -> &Metrics {
        self.solver.sub.metrics()
    }

    /// Snapshot of the registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics().snapshot()
    }

    /// The registry serialized as a pretty-printed JSON document — the
    /// payload `scripts/bench.sh` folds into `BENCH_*.json` baselines.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Roofline constants and exact FLOP totals for [`Self::trace_report`]:
    /// the CPE-cluster peak and per-CG DDR bandwidth of the next-gen
    /// hardware spec, plus the `ml.flops_*` counters the ML suite ticks
    /// from its exact per-GEMM accounting (`MlSuite::batch_flops`), keyed
    /// by the leaf kernel that spent them.
    pub fn roofline_inputs(&self) -> RooflineInputs {
        let spec = sunway_sim::SunwaySpec::next_gen();
        let mut inputs = RooflineInputs::from_arch(&spec);
        let m = self.metrics();
        for (counter, leaf) in [
            ("ml.flops_batched", "ml_physics_blocks"),
            ("ml.flops_percol", "ml_physics_columns"),
        ] {
            let flops = m.counter(counter);
            if flops > 0 {
                inputs.flops_by_kernel.insert(leaf.to_string(), flops);
            }
        }
        inputs
    }

    /// The Fig. 9-style attribution report over the tracer's current
    /// snapshot: per-kernel critical-path share, halo wait/transfer split,
    /// rank imbalance, and roofline placement (see `sunway_sim::trace`).
    /// Enable tracing first: `model.metrics().tracer().enable()`.
    pub fn trace_report(&self) -> TraceReport {
        sunway_sim::analyze(&self.metrics().tracer().snapshot(), &self.roofline_inputs())
    }

    pub fn n_cells(&self) -> usize {
        self.solver.mesh.n_cells()
    }

    /// One dynamics substep.
    pub fn step_dyn(&mut self) {
        let dt = self.config.dt_dyn;
        // Root trace span: kernels record under `step/dycore/...`.
        // (Cloned handle: the guard must not borrow `self`.)
        let span_sub = self.solver.sub.clone();
        span_sub
            .metrics()
            .tracer()
            .set_step(self.dyn_steps_taken as u64);
        let _span = span_sub.span("step");
        // The hook is taken out of `self` for the duration of the step so it
        // can receive `&mut self.state` without aliasing the model.
        let mut hook = self.halo_hook.take();
        if let Some(h) = hook.as_mut() {
            h(HaloPhase::Begin, &mut self.state);
        }
        self.solver.step(&mut self.state, dt);
        if let Some(h) = hook.as_mut() {
            h(HaloPhase::Complete, &mut self.state);
        }
        self.halo_hook = hook;
        self.time_s += dt;
        self.dyn_steps_taken += 1;
    }

    /// One physics step over `dt_phy`, using the §3.2.4 coupling interface.
    pub fn step_physics(&mut self) {
        // Root trace span: suite kernels record under `step/physics/...` (or
        // `step/ml/...` for the ML suite).
        let span_sub = self.solver.sub.clone();
        span_sub
            .metrics()
            .tracer()
            .set_step(self.dyn_steps_taken as u64);
        let _span = span_sub.span("step");
        let dt_phy = self.config.dt_phy;
        let utc_hours = (self.time_s / 3600.0) % 24.0;
        let (lats, lons) = (&self.lats, &self.lons);
        self.surface
            .update_sun(lats, lons, self.declination, utc_hours);
        let cols = extract_columns(&mut self.solver, &self.state, &self.surface);

        let (tends, diags): (Vec<Tendencies>, Vec<SurfaceDiag>) = match &mut self.physics {
            PhysicsEngine::Conventional { suite, states } => {
                let outs = suite.step_columns(&cols, states, dt_phy, self.config.dt_rad);
                outs.into_iter().map(|o| (o.tend, o.diag)).unzip()
            }
            PhysicsEngine::Ml(suite) => {
                let outs = suite.step_columns(&cols);
                outs.into_iter().map(|o| (o.tend, o.diag)).unzip()
            }
            PhysicsEngine::Hybrid { suite, states, ml } => {
                let conv = suite.step_columns(&cols, states, dt_phy, self.config.dt_rad);
                let mlo = ml.step_columns(&cols);
                conv.into_iter()
                    .zip(mlo)
                    .map(|(c, m)| blend_half((c.tend, c.diag), (m.tend, m.diag)))
                    .unzip()
            }
        };
        apply_tendencies(&mut self.solver, &mut self.state, &tends, dt_phy);
        self.last_tendencies = tends;
        for (c, d) in diags.iter().enumerate() {
            self.precip_accum[c] += d.precip * dt_phy / 86_400.0; // mm/day → mm
                                                                  // Land skin temperature persists; ocean SST is prescribed.
            if !self.surface.ocean[c] {
                self.surface.tskin[c] = d.tskin;
            }
        }
        self.last_diag = diags;
    }

    /// Advance the coupled model by `seconds`, firing physics on its cadence.
    pub fn advance(&mut self, seconds: f64) {
        let n_dyn = (seconds / self.config.dt_dyn).round() as usize;
        let dyn_per_phy = self.config.dyn_per_phy().max(1);
        for _ in 0..n_dyn {
            self.step_dyn();
            if self.dyn_steps_taken.is_multiple_of(dyn_per_phy) {
                self.step_physics();
            }
        }
    }

    /// Dynamics substeps taken since initialization (rewound by
    /// [`Self::restore`](GristModel::restore)).
    pub fn dyn_steps(&self) -> usize {
        self.dyn_steps_taken
    }

    /// The last checkpoint [`Self::advance_resilient`] captured, if any —
    /// persists across calls so a blowup detected at the *start* of a window
    /// can still roll back to the previous window's state.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// [`Self::advance`] under the configured
    /// [`RecoveryPolicy`](crate::config::RecoveryPolicy): checkpoints are
    /// captured every `checkpoint_interval` dyn steps, the prognostic fields
    /// are health-scanned every `health_interval` steps, and a scan that
    /// finds corruption (NaN/Inf, non-physical layers) restores the last
    /// checkpoint instead of crashing — up to `max_restores` times, after
    /// which the window is abandoned with `completed = false`.
    ///
    /// Deterministic by construction: the checkpoint/scan cadence is keyed
    /// to `dyn_steps_taken` (which restores rewind), so a fixed corruption
    /// produces the same rollback points on every run.
    pub fn advance_resilient(&mut self, seconds: f64) -> RecoveryOutcome {
        let policy = self.config.recovery.clone();
        let mut restores = 0u32;
        let mut checkpoints = 0u64;
        // Entry scan: corruption carried in from outside this window can
        // only be repaired if a previous window left a checkpoint behind.
        let mut report = self.health();
        if report.state == RunState::Corrupt {
            match self.last_checkpoint.clone() {
                Some(ck) if restores < policy.max_restores => {
                    self.restore(&ck).expect("own checkpoint must restore");
                    restores += 1;
                    report = self.health();
                }
                _ => {}
            }
            if report.state == RunState::Corrupt {
                return RecoveryOutcome {
                    completed: false,
                    restores,
                    checkpoints,
                    final_health: report,
                };
            }
        }
        if self.last_checkpoint.is_none() {
            self.last_checkpoint = Some(self.checkpoint());
            checkpoints += 1;
        }
        let t_end = self.time_s + seconds;
        let dyn_per_phy = self.config.dyn_per_phy().max(1);
        while self.time_s < t_end - 1e-6 {
            self.step_dyn();
            if self.dyn_steps_taken.is_multiple_of(dyn_per_phy) {
                self.step_physics();
            }
            let steps = self.dyn_steps_taken;
            let scan_due =
                policy.health_interval > 0 && steps.is_multiple_of(policy.health_interval);
            let ck_due =
                policy.checkpoint_interval > 0 && steps.is_multiple_of(policy.checkpoint_interval);
            if scan_due || ck_due {
                report = self.health();
                if report.state == RunState::Corrupt {
                    if restores >= policy.max_restores {
                        return RecoveryOutcome {
                            completed: false,
                            restores,
                            checkpoints,
                            final_health: report,
                        };
                    }
                    let ck = self
                        .last_checkpoint
                        .clone()
                        .expect("checkpoint captured at window entry");
                    self.restore(&ck).expect("own checkpoint must restore");
                    restores += 1;
                    continue;
                }
                if ck_due {
                    self.last_checkpoint = Some(self.checkpoint());
                    checkpoints += 1;
                }
            }
        }
        let final_health = self.health();
        RecoveryOutcome {
            completed: final_health.state != RunState::Corrupt,
            restores,
            checkpoints,
            final_health,
        }
    }

    /// Mean precipitation rate \[mm/day\] over the last physics step.
    pub fn mean_precip_rate(&self) -> f64 {
        if self.last_diag.is_empty() {
            return 0.0;
        }
        let mesh = &self.solver.mesh;
        let mut num = 0.0;
        let mut den = 0.0;
        for (c, d) in self.last_diag.iter().enumerate() {
            num += d.precip * mesh.cell_area[c];
            den += mesh.cell_area[c];
        }
        num / den
    }

    /// Surface dry pressure per cell (the `ps` observable).
    pub fn surface_pressure(&self) -> Vec<f64> {
        self.state.surface_pressure(self.solver.vc.p_top)
    }

    /// Measure actual simulation speed: run `sim_seconds` of model time and
    /// return SDPD = simulated-days / wall-clock-days.
    pub fn measure_sdpd(&mut self, sim_seconds: f64) -> f64 {
        let wall = std::time::Instant::now();
        self.advance(sim_seconds);
        let elapsed = wall.elapsed().as_secs_f64();
        (sim_seconds / 86_400.0) / (elapsed / 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    fn small_config() -> RunConfig {
        RunConfig::for_level(2, 10)
    }

    #[test]
    fn model_initializes_with_moist_tropics() {
        let m = GristModel::<f64>::new(small_config());
        // Moisture at the lowest level should peak near the equator.
        let nlev = m.config.nlev;
        let eq = (0..m.n_cells())
            .min_by(|&a, &b| m.lats[a].abs().partial_cmp(&m.lats[b].abs()).unwrap())
            .unwrap();
        let pole = (0..m.n_cells())
            .max_by(|&a, &b| m.lats[a].abs().partial_cmp(&m.lats[b].abs()).unwrap())
            .unwrap();
        assert!(m.state.tracers[0].at(nlev - 1, eq) > m.state.tracers[0].at(nlev - 1, pole));
    }

    #[test]
    fn coupled_model_runs_stably_with_conventional_physics() {
        let mut m = GristModel::<f64>::new(small_config());
        m.advance(4.0 * m.config.dt_phy);
        assert!(m.state.u.as_slice().iter().all(|x| x.is_finite()));
        assert!(m
            .state
            .theta_m
            .as_slice()
            .iter()
            .all(|x| x.is_finite() && *x > 0.0));
        let ps = m.surface_pressure();
        assert!(ps.iter().all(|&p| (8.0e4..1.2e5).contains(&p)));
    }

    #[test]
    fn coupled_model_runs_with_untrained_ml_physics() {
        // Untrained ML physics produces small random tendencies (initialized
        // near zero by out-norm identity); the model must stay finite.
        let cfg = small_config().with_ml_physics(true);
        let mut m = GristModel::<f64>::new(cfg);
        m.advance(2.0 * m.config.dt_phy);
        assert!(m.state.u.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(m.physics.label(), "ML-physics");
    }

    #[test]
    fn hybrid_physics_blends_both_suites() {
        let mut conv = GristModel::<f64>::new(small_config());
        let mut ml = GristModel::<f64>::new(small_config().with_ml_physics(true));
        let mut hyb = GristModel::<f64>::new(small_config());
        hyb.set_hybrid_physics();
        assert_eq!(hyb.physics.label(), "Hybrid");
        conv.step_physics();
        ml.step_physics();
        hyb.step_physics();
        // The hybrid diagnostic is the exact midpoint of the two suites on
        // the first step (identical column inputs into all three models).
        for c in [0usize, 57, 101] {
            let want = 0.5 * (conv.last_diag[c].glw + ml.last_diag[c].glw);
            assert_eq!(hyb.last_diag[c].glw.to_bits(), want.to_bits());
            let want_t = 0.5 * (conv.last_tendencies[c].dt_dt[0] + ml.last_tendencies[c].dt_dt[0]);
            assert_eq!(hyb.last_tendencies[c].dt_dt[0].to_bits(), want_t.to_bits());
        }
        // And the blended model stays stable.
        hyb.advance(2.0 * hyb.config.dt_phy);
        assert!(hyb.state.u.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn physics_fires_on_the_configured_cadence() {
        let mut m = GristModel::<f64>::new(small_config());
        let dyn_per_phy = m.config.dyn_per_phy();
        // One dyn step less than a physics interval: no diagnostics yet.
        for _ in 0..dyn_per_phy - 1 {
            m.step_dyn();
        }
        assert!(
            m.last_diag.iter().all(|d| d.glw == 0.0),
            "physics ran early"
        );
        m.step_dyn();
        m.step_physics();
        assert!(
            m.last_diag.iter().any(|d| d.glw > 0.0),
            "physics did not run"
        );
    }

    #[test]
    fn radiation_reaches_the_surface_diagnostics() {
        let mut m = GristModel::<f64>::new(small_config());
        m.advance(2.0 * m.config.dt_phy);
        // Somewhere on the day side gsw must be positive, glw everywhere.
        assert!(m.last_diag.iter().any(|d| d.gsw > 50.0));
        assert!(m.last_diag.iter().all(|d| d.glw > 100.0));
    }

    #[test]
    fn continent_activates_the_land_model_with_a_diurnal_cycle() {
        let mut m = GristModel::<f64>::new(small_config());
        m.add_continent((0.1, 0.8), (0.0, 1.5));
        let land_cells: Vec<usize> = (0..m.n_cells()).filter(|&c| !m.surface.ocean[c]).collect();
        assert!(!land_cells.is_empty(), "continent carved no cells");
        let t0: Vec<f64> = land_cells.iter().map(|&c| m.surface.tskin[c]).collect();
        // Integrate across several physics steps: land tskin must evolve
        // (prognostic), ocean tskin must stay prescribed.
        let ocean_t0 = m.surface.tskin[(0..m.n_cells()).find(|&c| m.surface.ocean[c]).unwrap()];
        m.advance(6.0 * m.config.dt_phy);
        let moved = land_cells
            .iter()
            .zip(&t0)
            .filter(|(&c, &t)| (m.surface.tskin[c] - t).abs() > 0.05)
            .count();
        assert!(
            moved > land_cells.len() / 2,
            "land skin temperature did not evolve ({moved}/{})",
            land_cells.len()
        );
        let ocean_c = (0..m.n_cells()).find(|&c| m.surface.ocean[c]).unwrap();
        assert_eq!(
            m.surface.tskin[ocean_c], ocean_t0,
            "SST must stay prescribed"
        );
    }

    #[test]
    fn advance_resilient_rolls_back_a_nan_blowup() {
        let mut m = GristModel::<f64>::new(small_config());
        let out = m.advance_resilient(2.0 * m.config.dt_phy);
        assert!(out.completed, "{}", out.final_health.diagnosis);
        assert_eq!(out.restores, 0);
        assert!(out.checkpoints >= 1, "entry checkpoint must be captured");
        assert!(m.last_checkpoint().is_some());
        // Poke a NaN between windows; the next window's entry scan must
        // detect it and roll back to the previous window's checkpoint.
        m.state.u.set(0, 3, f64::NAN);
        let out2 = m.advance_resilient(m.config.dt_phy);
        assert!(out2.completed, "{}", out2.final_health.diagnosis);
        assert_eq!(out2.restores, 1);
        assert!(m.state.u.as_slice().iter().all(|x| x.is_finite()));
        assert!(m.metrics().counter("recovery.restores") >= 1);
    }

    #[test]
    fn unrecoverable_corruption_is_reported_not_panicked() {
        let mut m = GristModel::<f64>::new(small_config());
        // Corrupt before any checkpoint exists: nothing to roll back to.
        m.state.u.set(0, 3, f64::NAN);
        let out = m.advance_resilient(m.config.dt_phy);
        assert!(!out.completed);
        assert_eq!(out.final_health.state, crate::health::RunState::Corrupt);
        assert_eq!(out.restores, 0);
    }

    #[test]
    fn f32_model_matches_f64_under_gate_for_short_run() {
        let mut m64 = GristModel::<f64>::new(small_config());
        let mut m32 = GristModel::<f32>::new(small_config());
        m64.advance(2.0 * m64.config.dt_phy);
        m32.advance(2.0 * m32.config.dt_phy);
        let e = grist_dycore::relative_l2_error(&m32.surface_pressure(), &m64.surface_pressure());
        assert!(
            e < grist_dycore::MIXED_PRECISION_ERROR_THRESHOLD,
            "ps deviation {e}"
        );
    }
}
