//! Prognostic-field health monitoring: the detection half of the recovery
//! ladder.
//!
//! A reduced-precision dynamics blowup, a corrupted restore, or a physics
//! tendency gone wild all leave fingerprints in the prognostic fields long
//! before the run crashes: NaN/Inf values, non-positive layer masses or
//! potential temperatures, or winds whose acoustic CFL number no longer fits
//! the timestep. [`GristModel::health`] scans every prognostic field and
//! classifies the run:
//!
//! * [`RunState::Healthy`] — all finite, positive where required, CFL sane;
//! * [`RunState::Unstable`] — finite but the wind speed or CFL number has
//!   left the trust region (the step *will* blow up; checkpoint now);
//! * [`RunState::Corrupt`] — non-finite or non-physical values present; the
//!   only remedy is restoring the last checkpoint.
//!
//! Each scan ticks `health.scans` in the metrics registry so chaos drivers
//! can assert the monitor actually ran.

use crate::model::GristModel;
use grist_dycore::Real;
use grist_mesh::EARTH_RADIUS_M;
use std::fmt;

/// Trust-region bounds for [`GristModel::health_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthThresholds {
    /// Maximum plausible |u| \[m/s\] before the run is declared unstable.
    pub max_wind: f64,
    /// Maximum advective CFL number `max|u|·dt_dyn / min Δx`.
    pub max_cfl: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            max_wind: 350.0,
            max_cfl: 2.0,
        }
    }
}

/// Classified run state, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunState {
    Healthy,
    Unstable,
    Corrupt,
}

impl fmt::Display for RunState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RunState::Healthy => "healthy",
            RunState::Unstable => "unstable",
            RunState::Corrupt => "corrupt",
        })
    }
}

/// One health scan's findings.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    pub state: RunState,
    /// NaN/Inf values found across all prognostic fields.
    pub non_finite: u64,
    /// Finite but non-physical values (`δπ ≤ 0`, `Θ ≤ 0`).
    pub non_physical: u64,
    /// Largest |u| over all edges/levels \[m/s\].
    pub max_abs_u: f64,
    /// Advective CFL number at the shortest edge.
    pub cfl: f64,
    /// Human-readable one-line diagnosis.
    pub diagnosis: String,
}

fn scan_slice_finite(values: impl Iterator<Item = f64>, non_finite: &mut u64) -> f64 {
    let mut max_abs = 0.0f64;
    for v in values {
        if !v.is_finite() {
            *non_finite += 1;
        } else {
            max_abs = max_abs.max(v.abs());
        }
    }
    max_abs
}

impl<R: Real> GristModel<R> {
    /// [`Self::health_with`] under the default [`HealthThresholds`].
    pub fn health(&self) -> HealthReport {
        self.health_with(&HealthThresholds::default())
    }

    /// Scan every prognostic field for NaN/Inf, non-physical layer values,
    /// and CFL blowup, and classify the run state.
    pub fn health_with(&self, thresholds: &HealthThresholds) -> HealthReport {
        let mut non_finite = 0u64;
        let mut non_physical = 0u64;
        for &v in self.state.dpi.as_slice() {
            if !v.is_finite() {
                non_finite += 1;
            } else if v <= 0.0 {
                non_physical += 1;
            }
        }
        for &v in self.state.theta_m.as_slice() {
            if !v.is_finite() {
                non_finite += 1;
            } else if v <= 0.0 {
                non_physical += 1;
            }
        }
        let max_abs_u = scan_slice_finite(
            self.state.u.as_slice().iter().map(|v| v.to_f64()),
            &mut non_finite,
        );
        scan_slice_finite(self.state.w.as_slice().iter().copied(), &mut non_finite);
        scan_slice_finite(self.state.phi.as_slice().iter().copied(), &mut non_finite);
        for t in &self.state.tracers {
            scan_slice_finite(t.as_slice().iter().map(|v| v.to_f64()), &mut non_finite);
        }

        let mesh = &self.solver.mesh;
        let min_dx = mesh.edge_de.iter().fold(f64::INFINITY, |a, &b| a.min(b)) * EARTH_RADIUS_M;
        let cfl = if min_dx.is_finite() && min_dx > 0.0 {
            max_abs_u * self.config.dt_dyn / min_dx
        } else {
            0.0
        };

        let (state, diagnosis) = if non_finite > 0 {
            (
                RunState::Corrupt,
                format!("{non_finite} non-finite prognostic values"),
            )
        } else if non_physical > 0 {
            (
                RunState::Corrupt,
                format!("{non_physical} non-positive mass/temperature layers"),
            )
        } else if max_abs_u > thresholds.max_wind || cfl > thresholds.max_cfl {
            (
                RunState::Unstable,
                format!(
                    "max|u| = {max_abs_u:.1} m/s, CFL = {cfl:.2} (limits {} m/s, {})",
                    thresholds.max_wind, thresholds.max_cfl
                ),
            )
        } else {
            (
                RunState::Healthy,
                format!("max|u| = {max_abs_u:.1} m/s, CFL = {cfl:.2}"),
            )
        };
        self.metrics().counter_add("health.scans", 1);
        HealthReport {
            state,
            non_finite,
            non_physical,
            max_abs_u,
            cfl,
            diagnosis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    fn model() -> GristModel<f64> {
        GristModel::<f64>::new(RunConfig::for_level(2, 6))
    }

    #[test]
    fn fresh_model_is_healthy() {
        let m = model();
        let h = m.health();
        assert_eq!(h.state, RunState::Healthy, "{}", h.diagnosis);
        assert_eq!(h.non_finite, 0);
        assert_eq!(h.non_physical, 0);
        assert!(h.cfl < 1.0, "rest state CFL should be tiny, got {}", h.cfl);
        assert_eq!(m.metrics().counter("health.scans"), 1);
    }

    #[test]
    fn nan_poke_is_classified_corrupt() {
        let mut m = model();
        m.state.u.set(0, 10, f64::NAN);
        let h = m.health();
        assert_eq!(h.state, RunState::Corrupt);
        assert_eq!(h.non_finite, 1);
        assert!(h.diagnosis.contains("non-finite"), "{}", h.diagnosis);
    }

    #[test]
    fn negative_layer_mass_is_corrupt() {
        let mut m = model();
        m.state.dpi.set(2, 5, -1.0);
        let h = m.health();
        assert_eq!(h.state, RunState::Corrupt);
        assert_eq!(h.non_physical, 1);
        assert!(h.diagnosis.contains("non-positive"), "{}", h.diagnosis);
    }

    #[test]
    fn hurricane_force_winds_are_unstable_not_corrupt() {
        let mut m = model();
        m.state.u.set(0, 0, 500.0);
        let h = m.health();
        assert_eq!(h.state, RunState::Unstable);
        assert_eq!(h.non_finite, 0);
        assert!(h.max_abs_u >= 500.0);
    }

    #[test]
    fn cfl_threshold_scales_with_timestep() {
        let mut m = model();
        // A wind below max_wind but whose CFL blows the budget at this dt.
        let mesh_min_dx = m
            .solver
            .mesh
            .edge_de
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b))
            * grist_mesh::EARTH_RADIUS_M;
        let u_cfl3 = 3.0 * mesh_min_dx / m.config.dt_dyn;
        let u = u_cfl3.min(300.0); // stay under max_wind if possible
        m.state.u.set(0, 0, u);
        let h = m.health_with(&HealthThresholds {
            max_wind: 1.0e9,
            max_cfl: 2.0,
        });
        if u_cfl3 <= 300.0 {
            assert_eq!(h.state, RunState::Unstable, "{}", h.diagnosis);
        }
        assert!(h.cfl > 0.0);
    }
}
