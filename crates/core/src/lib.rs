//! # grist-core
//!
//! The coupled GRIST-rs model of the PPoPP '25 reproduction: experiment
//! configurations (Tables 2–3), the physics–dynamics coupling interface
//! (§3.2.4), the assembled ML physics suite, the coupled model driver, the
//! idealized case library (tropical cyclone / baroclinic wave / supercell /
//! aqua-planet), the ML training-data pipeline (§3.2.1–3.2.2), and the
//! evaluation diagnostics (spatial correlation, lat–lon maps, the §3.4.1
//! mixed-precision gate).

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod cases;
pub mod checkpoint;
pub mod config;
pub mod coupling;
pub mod datagen;
pub mod diag;
pub mod health;
pub mod history;
pub mod mlsuite;
pub mod model;
pub mod observe;
pub mod overlap;
pub mod scenario;

pub use cases::{
    add_baroclinic_jet, add_supercell_patch, add_tropical_cyclone, apply_held_suarez, HeldSuarez,
    TropicalCyclone,
};
pub use checkpoint::{decode_bits, encode_bits, Checkpoint, CheckpointError, CHECKPOINT_SCHEMA};
pub use config::{table2_grids, table3_schemes, GridSpec, RecoveryPolicy, RunConfig, Scheme};
pub use coupling::{apply_tendencies, extract_columns, SurfaceState};
pub use datagen::{
    coarse_grain_columns, generate_training_data, train_ml_suite, CoarseMap, DataGenConfig,
    GeneratedData, TrainReport,
};
pub use diag::{bin_latlon, precision_gate, spatial_correlation, PrecisionGate};
pub use health::{HealthReport, HealthThresholds, RunState};
pub use history::{read_snapshot, HistoryRecord, HistoryWriter, Snapshot};
pub use mlsuite::{MlOutput, MlSuite, ScratchPool, DEFAULT_ML_BLOCK};
pub use model::{GristModel, HaloHook, HaloPhase, PhysicsEngine, RecoveryOutcome};
pub use overlap::{swe_dyn_step, DynStepMode};
pub use scenario::{
    parse_scenario_file, scenario_file_json, CaseSpec, FaultSpec, PhysicsChoice, RefinementSpec,
    Scenario, ScenarioArtifact, ScenarioError, ScenarioRun, ScenarioRunner, TargetSpec,
    SCENARIO_SCHEMA,
};
