//! Experiment configurations: Table 2 (grids & timesteps) and Table 3
//! (scheme matrix), plus runnable host-scale configurations that exercise
//! the same code paths at laptop-tractable grid levels.

use grist_dycore::PrecisionMode;
pub use grist_runtime::scaling::{table2_grids, GridSpec, Scheme};

/// Table 3 of the paper.
pub fn table3_schemes() -> [Scheme; 4] {
    Scheme::all()
}

/// How the model driver survives injected or real faults: the retry/degrade
/// ladder for substrate dispatches and the checkpoint/health cadence used by
/// `GristModel::advance_resilient`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Dyn steps between automatic checkpoints.
    pub checkpoint_interval: usize,
    /// Dyn steps between prognostic-field health scans.
    pub health_interval: usize,
    /// Checkpoint restores tolerated before the run is declared lost.
    pub max_restores: u32,
    /// Re-issues of a failed CpeTeams dispatch before degrading to serial
    /// (forwarded into `FaultPlan::with_max_retries` by chaos drivers).
    pub max_dispatch_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 8,
            health_interval: 4,
            max_restores: 3,
            max_dispatch_retries: 2,
        }
    }
}

/// A runnable model configuration (host-scale analogue of a Table 2 row).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Icosahedral grid level to actually build (e.g. 4 ⇒ 2562 cells).
    pub level: u32,
    /// Vertical layers.
    pub nlev: usize,
    /// Dynamics / tracer / physics / radiation timesteps \[s\], keeping the
    /// paper's 1 : 7.5 : 15 : 45 cadence of Table 2 scaled to the grid.
    pub dt_dyn: f64,
    pub dt_trac: f64,
    pub dt_phy: f64,
    pub dt_rad: f64,
    /// Dycore precision (Table 3's DP vs MIX).
    pub precision: PrecisionMode,
    /// ML physics suite instead of the conventional one.
    pub ml_physics: bool,
    /// Reference temperature of the initial isothermal state \[K\].
    pub t_ref: f64,
    /// Reference surface (dry) pressure \[Pa\].
    pub ps_ref: f64,
    /// Fault-recovery ladder configuration.
    pub recovery: RecoveryPolicy,
}

impl RunConfig {
    /// A stable default for grid `level`: timesteps scaled by cell size so
    /// the horizontal acoustic CFL matches the paper's G12 @ 4 s.
    pub fn for_level(level: u32, nlev: usize) -> Self {
        // G12 spacing ≈ 1.7 km at dt = 4 s; spacing grows 2× per level down.
        let spacing_km = 1.7 * 2f64.powi(12 - level as i32);
        // dt scales linearly with spacing from G12's 4 s, capped for physics
        // cadence sanity at coarse test grids.
        let dt_dyn = (4.0 * spacing_km / 1.7).clamp(4.0, 400.0);
        RunConfig {
            level,
            nlev,
            dt_dyn,
            dt_trac: 8.0 * dt_dyn,
            dt_phy: 16.0 * dt_dyn,
            dt_rad: 48.0 * dt_dyn,
            precision: PrecisionMode::Double,
            ml_physics: false,
            t_ref: 288.0,
            ps_ref: 1.0e5,
            recovery: RecoveryPolicy::default(),
        }
    }

    pub fn with_precision(mut self, p: PrecisionMode) -> Self {
        self.precision = p;
        self
    }

    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    pub fn with_ml_physics(mut self, ml: bool) -> Self {
        self.ml_physics = ml;
        self
    }

    /// Table 3 label of this configuration.
    pub fn scheme_label(&self) -> &'static str {
        match (self.precision, self.ml_physics) {
            (PrecisionMode::Double, false) => "DP-PHY",
            (PrecisionMode::Double, true) => "DP-ML",
            (PrecisionMode::Mixed, false) => "MIX-PHY",
            (PrecisionMode::Mixed, true) => "MIX-ML",
        }
    }

    /// Dynamics substeps per tracer step (must divide evenly).
    pub fn dyn_per_trac(&self) -> usize {
        (self.dt_trac / self.dt_dyn).round() as usize
    }

    pub fn dyn_per_phy(&self) -> usize {
        (self.dt_phy / self.dt_dyn).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_counts() {
        let grids = table2_grids();
        let g12 = grids.iter().find(|g| g.label == "G12").unwrap();
        assert_eq!(g12.cells, 167_772_162);
        assert_eq!(g12.edges, 503_316_480);
        assert_eq!(g12.verts, 335_544_320);
        assert_eq!(g12.dt_dyn, 4.0);
        let g11s = grids.iter().find(|g| g.label == "G11S").unwrap();
        assert_eq!(g11s.dt_dyn, 8.0);
        assert_eq!(g11s.cells, 41_943_042);
        let g6 = grids.iter().find(|g| g.label == "G6").unwrap();
        assert_eq!(g6.cells, 40_962);
    }

    #[test]
    fn table3_has_all_four_schemes() {
        let labels: Vec<&str> = table3_schemes().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["DP-PHY", "DP-ML", "MIX-PHY", "MIX-ML"]);
    }

    #[test]
    fn run_config_keeps_table2_cadence() {
        let c = RunConfig::for_level(4, 20);
        assert_eq!(c.dyn_per_trac(), 8);
        assert_eq!(c.dyn_per_phy(), 16);
        assert_eq!(
            (c.dt_rad / c.dt_phy).round() as usize,
            3,
            "rad = 3× phy as in Table 2"
        );
    }

    #[test]
    fn run_config_timestep_scales_with_level() {
        // Coarse levels clamp at 400 s; below the clamp dt halves per level.
        let c8 = RunConfig::for_level(8, 10);
        let c9 = RunConfig::for_level(9, 10);
        assert!((c8.dt_dyn / c9.dt_dyn - 2.0).abs() < 1e-12);
        assert!(RunConfig::for_level(4, 10).dt_dyn <= 400.0);
    }

    #[test]
    fn scheme_labels_follow_table3() {
        let c = RunConfig::for_level(3, 10)
            .with_precision(PrecisionMode::Mixed)
            .with_ml_physics(true);
        assert_eq!(c.scheme_label(), "MIX-ML");
    }
}
