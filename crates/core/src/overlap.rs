//! Halo-exchange / interior-compute overlap for multi-rank dynamics steps.
//!
//! The paper's scaling story rests on hiding halo communication behind
//! interior computation: each dyn step is split into a halo-independent
//! interior phase and a halo-adjacent remainder (the `PhaseSplit` /
//! `SwePhases` cover), and the gathered halo exchange runs as an async
//! begin/complete pair around the interior phase. Both the synchronous and
//! the overlapped drivers here execute the *same* phased arithmetic — the
//! only difference is when the messages travel — so the two modes are
//! bitwise identical and the wait-time saving measured by the tracer is
//! attributable purely to the overlap.

use grist_dycore::swe::{SwePhases, SweSolver, SweState};
use grist_mesh::RankLocale;
use grist_runtime::comm::RankCtx;
use grist_runtime::exchange::{
    exchange_gathered, exchange_gathered_begin, exchange_gathered_begin_metered,
    exchange_gathered_chaos, exchange_gathered_complete, exchange_gathered_complete_chaos,
    exchange_gathered_complete_metered, exchange_gathered_metered, ExchangeError, ExchangeReceipt,
    VarList,
};
use sunway_sim::fault::FaultPlan;
use sunway_sim::Metrics;

/// How a multi-rank dyn step schedules its halo exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynStepMode {
    /// Interior phase, then a blocking gathered exchange, then the
    /// remainder phase. Each rank's receive waits out its neighbours'
    /// interior compute.
    Synchronous,
    /// Pack and send *before* the step, run the interior phase while the
    /// messages are in flight, complete (receive + unpack) just before the
    /// remainder phase. Bitwise identical to [`Self::Synchronous`].
    Overlapped,
}

/// One distributed shallow-water RK3 step with a halo exchange of `h`
/// folded into stage 1, in either [`DynStepMode`].
///
/// The exchange transports the thickness field `h` (the shared-grid
/// emulation of the multi-rank drivers: every rank computes the full grid,
/// and the exchange keeps the halo cells consistent with their owners).
/// `metrics` turns on counter/trace recording; `plan` arms the chaos
/// truncation schedule on the receive side. On an [`ExchangeError`] the
/// remainder phase of stage 1 is skipped and the step's output state is
/// unusable — callers must treat the error as fatal for this step, exactly
/// like the synchronous drivers do.
#[allow(clippy::too_many_arguments)]
pub fn swe_dyn_step(
    solver: &mut SweSolver<f64>,
    state: &mut SweState<f64>,
    dt: f64,
    ctx: &mut RankCtx,
    locale: &RankLocale,
    phases: &SwePhases,
    tag: u32,
    mode: DynStepMode,
    metrics: Option<&Metrics>,
    plan: Option<&FaultPlan>,
) -> Result<ExchangeReceipt, ExchangeError> {
    let mut xerr: Option<ExchangeError> = None;
    let mut receipt = ExchangeReceipt::default();
    match mode {
        DynStepMode::Synchronous => {
            solver.step_rk3_with_stage1(state, dt, |sv, st, th, tu| {
                sv.tendencies_subset(st, th, tu, &phases.interior);
                let mut list = VarList::new();
                list.push("h", st.h.nlev(), st.h.as_mut_slice());
                let res = match (metrics, plan) {
                    (Some(m), Some(p)) => {
                        exchange_gathered_chaos(ctx, locale, &mut list, tag, m, p)
                    }
                    (Some(m), None) => exchange_gathered_metered(ctx, locale, &mut list, tag, m),
                    _ => exchange_gathered(ctx, locale, &mut list, tag),
                };
                match res {
                    Ok(r) => receipt = r,
                    Err(e) => {
                        xerr = Some(e);
                        return;
                    }
                }
                sv.tendencies_subset(st, th, tu, &phases.remainder);
            });
        }
        DynStepMode::Overlapped => {
            // Pack and send before the step: the interior phase reads only
            // owned data (pad-1 phase split), so it runs concurrently with
            // the in-flight messages. Stage 1 does not modify `h`, so the
            // packed bytes are identical to the synchronous mode's.
            let pending = {
                let mut list = VarList::new();
                list.push("h", state.h.nlev(), state.h.as_mut_slice());
                match metrics {
                    Some(m) => exchange_gathered_begin_metered(ctx, locale, &list, tag, m),
                    None => exchange_gathered_begin(ctx, locale, &list, tag),
                }
            };
            solver.step_rk3_with_stage1(state, dt, |sv, st, th, tu| {
                sv.tendencies_subset(st, th, tu, &phases.interior);
                let mut list = VarList::new();
                list.push("h", st.h.nlev(), st.h.as_mut_slice());
                let res = match (metrics, plan) {
                    (Some(m), Some(p)) => {
                        exchange_gathered_complete_chaos(pending, ctx, locale, &mut list, m, p)
                    }
                    (Some(m), None) => {
                        exchange_gathered_complete_metered(pending, ctx, locale, &mut list, m)
                    }
                    _ => exchange_gathered_complete(pending, ctx, locale, &mut list),
                };
                match res {
                    Ok(r) => receipt = r,
                    Err(e) => {
                        xerr = Some(e);
                        return;
                    }
                }
                sv.tendencies_subset(st, th, tu, &phases.remainder);
            });
        }
    }
    match xerr {
        Some(e) => Err(e),
        None => Ok(receipt),
    }
}
