//! Declarative scenario matrix: typed, JSON-loadable experiment configs and
//! a deterministic conformance runner with golden-hash pins.
//!
//! The paper's "seamless" claim — one model spanning standard dycore test
//! cases, physics-suite variants, and global-to-regional configurations —
//! becomes testable here: a [`Scenario`] names an initial case × physics
//! suite {conventional, ML, hybrid} × precision mode × resolution level ×
//! dyn-step mode × fault plan × optional regional refinement, composed
//! entirely from existing pieces (`cases.rs`, `swe_cases.rs`, [`RunConfig`],
//! [`RecoveryPolicy`](crate::RecoveryPolicy), the substrate targets). The
//! [`ScenarioRunner`] executes it deterministically and emits a
//! [`ScenarioArtifact`]: bitwise state hashes (the `checkpoint.rs` FNV
//! family), conservation/health diagnostics pinned by bit pattern, and
//! exact counters. Committed pins live in `scenarios/*.json`; the
//! `scenario_gate` bin and `tests/integration_scenarios.rs` replay the
//! matrix and fail on any drift.
//!
//! Parsing is strict: unknown or missing fields are typed
//! [`ScenarioError`]s naming the offending field, never a panic — malformed
//! pins must fail loudly in CI, not deserialize to defaults.

use crate::cases::{
    add_baroclinic_jet, add_supercell_patch, add_tropical_cyclone, apply_held_suarez, HeldSuarez,
    TropicalCyclone,
};
use crate::checkpoint::{hash_f64_bits, hash_u32_seq};
use crate::config::RunConfig;
use crate::model::GristModel;
use crate::overlap::DynStepMode;
use grist_dycore::swe::{SwePhases, SweSolver, SweState};
use grist_dycore::swe_cases::{install_tc5_mountain, williamson_tc5, williamson_tc6};
use grist_dycore::{PrecisionMode, Real};
use grist_mesh::{windowed_mesh_quality, HaloLayout, HexMesh, Partition, RefinementWindow};
use grist_runtime::run_world;
use std::fmt;
use sunway_sim::{FaultPlan, FaultSite, Json, Substrate};

/// Schema tag of a scenario document.
pub const SCENARIO_SCHEMA: &str = "grist-scenario-v1";

/// A malformed, unknown, or unrunnable scenario — always names the field or
/// constraint at fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The document is not valid JSON.
    Parse(String),
    /// A required field is absent.
    MissingField { field: String },
    /// A field this schema does not define (typo guard: strict parsing).
    UnknownField { field: String, allowed: String },
    /// A field holds a value outside its domain.
    BadValue { field: String, what: String },
    /// A well-formed combination this runner cannot execute.
    Unsupported { what: String },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "scenario parse error: {e}"),
            ScenarioError::MissingField { field } => {
                write!(f, "scenario error: missing field {field}")
            }
            ScenarioError::UnknownField { field, allowed } => {
                write!(
                    f,
                    "scenario error: unknown field {field} (allowed: {allowed})"
                )
            }
            ScenarioError::BadValue { field, what } => {
                write!(f, "scenario error: bad value for {field}: {what}")
            }
            ScenarioError::Unsupported { what } => {
                write!(f, "scenario error: unsupported configuration: {what}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The initial-value case a scenario integrates.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseSpec {
    /// The plain aqua-planet rest state (the smoke workload).
    AquaPlanet,
    /// Idealized tropical cyclone (`cases::add_tropical_cyclone`).
    TropicalCyclone { rmax: f64, vmax: f64 },
    /// Baroclinic jet + perturbation (`cases::add_baroclinic_jet`).
    BaroclinicJet { u0: f64, perturb: f64 },
    /// Supercell patch at (lat, lon) degrees (`cases::add_supercell_patch`).
    Supercell { lat_deg: f64, lon_deg: f64 },
    /// Dry Held–Suarez forcing replacing the physics suite.
    HeldSuarez,
    /// Williamson TC5 (zonal flow over an isolated mountain), distributed
    /// over `ranks` ranks with the phased SWE dyn step.
    WilliamsonTc5 { steps: usize, dt: f64, ranks: usize },
    /// Williamson TC6 (Rossby–Haurwitz wave), distributed over `ranks`.
    WilliamsonTc6 { steps: usize, dt: f64, ranks: usize },
}

impl CaseSpec {
    /// Scenario cases split into two families with different runners.
    pub fn is_swe(&self) -> bool {
        matches!(
            self,
            CaseSpec::WilliamsonTc5 { .. } | CaseSpec::WilliamsonTc6 { .. }
        )
    }

    fn kind(&self) -> &'static str {
        match self {
            CaseSpec::AquaPlanet => "aqua_planet",
            CaseSpec::TropicalCyclone { .. } => "tropical_cyclone",
            CaseSpec::BaroclinicJet { .. } => "baroclinic_jet",
            CaseSpec::Supercell { .. } => "supercell",
            CaseSpec::HeldSuarez => "held_suarez",
            CaseSpec::WilliamsonTc5 { .. } => "williamson_tc5",
            CaseSpec::WilliamsonTc6 { .. } => "williamson_tc6",
        }
    }
}

/// Physics-suite ablation axis (Table 3's "Physics" column + the hybrid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicsChoice {
    Conventional,
    Ml,
    Hybrid,
}

/// Execution target of every hot loop in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSpec {
    Serial,
    CpeTeams { cpes: usize },
}

/// Deterministic fault plan armed on the substrate; the run must complete
/// through the recovery ladder (`advance_resilient`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub seed: u64,
    pub dispatch_rate: f64,
    pub dma_rate: f64,
    pub max_retries: u32,
}

/// Variable-resolution regional refinement: a lat/lon window whose cells
/// carry extra weight in a refinement-aware partition (degrees here; the
/// mesh layer works in radians).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementSpec {
    pub lat_min_deg: f64,
    pub lat_max_deg: f64,
    pub lon_min_deg: f64,
    pub lon_max_deg: f64,
    pub weight: f64,
    pub parts: usize,
    pub refine_passes: usize,
}

impl RefinementSpec {
    /// The mesh-layer window (radians).
    pub fn window(&self) -> RefinementWindow {
        RefinementWindow {
            lat_min: self.lat_min_deg.to_radians(),
            lat_max: self.lat_max_deg.to_radians(),
            lon_min: self.lon_min_deg.to_radians(),
            lon_max: self.lon_max_deg.to_radians(),
            weight: self.weight,
        }
    }
}

/// One cell of the scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub name: String,
    pub case: CaseSpec,
    pub physics: PhysicsChoice,
    pub precision: PrecisionMode,
    /// Icosahedral grid level.
    pub level: u32,
    /// Vertical layers (coupled cases; ignored by SWE cases).
    pub nlev: usize,
    pub target: TargetSpec,
    /// Halo-exchange scheduling for distributed SWE cases.
    pub dyn_mode: DynStepMode,
    /// Physics windows to integrate (coupled cases; ignored by SWE cases).
    pub phy_steps: usize,
    pub fault: Option<FaultSpec>,
    pub refinement: Option<RefinementSpec>,
}

// ---------------------------------------------------------------------------
// Strict JSON parsing
// ---------------------------------------------------------------------------

fn expect_obj<'a>(
    j: &'a Json,
    ctx: &str,
    allowed: &[&str],
) -> Result<&'a [(String, Json)], ScenarioError> {
    let fields = j.as_obj().ok_or_else(|| ScenarioError::BadValue {
        field: ctx.into(),
        what: "expected an object".into(),
    })?;
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(ScenarioError::UnknownField {
                field: format!("{ctx}.{k}"),
                allowed: allowed.join(", "),
            });
        }
    }
    Ok(fields)
}

fn req<'a>(j: &'a Json, ctx: &str, key: &str) -> Result<&'a Json, ScenarioError> {
    j.get(key).ok_or_else(|| ScenarioError::MissingField {
        field: format!("{ctx}.{key}"),
    })
}

fn req_str<'a>(j: &'a Json, ctx: &str, key: &str) -> Result<&'a str, ScenarioError> {
    req(j, ctx, key)?
        .as_str()
        .ok_or_else(|| ScenarioError::BadValue {
            field: format!("{ctx}.{key}"),
            what: "expected a string".into(),
        })
}

fn req_f64(j: &Json, ctx: &str, key: &str) -> Result<f64, ScenarioError> {
    req(j, ctx, key)?
        .as_f64()
        .ok_or_else(|| ScenarioError::BadValue {
            field: format!("{ctx}.{key}"),
            what: "expected a number".into(),
        })
}

fn req_u64(j: &Json, ctx: &str, key: &str) -> Result<u64, ScenarioError> {
    req(j, ctx, key)?
        .as_u64()
        .ok_or_else(|| ScenarioError::BadValue {
            field: format!("{ctx}.{key}"),
            what: "expected a non-negative integer".into(),
        })
}

impl Scenario {
    /// Parse the `config` object of a scenario document.
    pub fn from_json(j: &Json, ctx: &str) -> Result<Self, ScenarioError> {
        expect_obj(
            j,
            ctx,
            &[
                "name",
                "case",
                "physics",
                "precision",
                "level",
                "nlev",
                "target",
                "dyn_mode",
                "phy_steps",
                "fault",
                "refinement",
            ],
        )?;
        let name = req_str(j, ctx, "name")?.to_string();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ScenarioError::BadValue {
                field: format!("{ctx}.name"),
                what: format!("{name:?} is not a [a-z0-9_]+ identifier"),
            });
        }

        let case_j = req(j, ctx, "case")?;
        let cctx = format!("{ctx}.case");
        let kind = req_str(case_j, &cctx, "kind")?;
        let case = match kind {
            "aqua_planet" => {
                expect_obj(case_j, &cctx, &["kind"])?;
                CaseSpec::AquaPlanet
            }
            "tropical_cyclone" => {
                expect_obj(case_j, &cctx, &["kind", "rmax", "vmax"])?;
                CaseSpec::TropicalCyclone {
                    rmax: req_f64(case_j, &cctx, "rmax")?,
                    vmax: req_f64(case_j, &cctx, "vmax")?,
                }
            }
            "baroclinic_jet" => {
                expect_obj(case_j, &cctx, &["kind", "u0", "perturb"])?;
                CaseSpec::BaroclinicJet {
                    u0: req_f64(case_j, &cctx, "u0")?,
                    perturb: req_f64(case_j, &cctx, "perturb")?,
                }
            }
            "supercell" => {
                expect_obj(case_j, &cctx, &["kind", "lat_deg", "lon_deg"])?;
                CaseSpec::Supercell {
                    lat_deg: req_f64(case_j, &cctx, "lat_deg")?,
                    lon_deg: req_f64(case_j, &cctx, "lon_deg")?,
                }
            }
            "held_suarez" => {
                expect_obj(case_j, &cctx, &["kind"])?;
                CaseSpec::HeldSuarez
            }
            "williamson_tc5" | "williamson_tc6" => {
                expect_obj(case_j, &cctx, &["kind", "steps", "dt", "ranks"])?;
                let steps = req_u64(case_j, &cctx, "steps")? as usize;
                let dt = req_f64(case_j, &cctx, "dt")?;
                let ranks = req_u64(case_j, &cctx, "ranks")? as usize;
                if ranks == 0 {
                    return Err(ScenarioError::BadValue {
                        field: format!("{cctx}.ranks"),
                        what: "must be >= 1".into(),
                    });
                }
                if kind == "williamson_tc5" {
                    CaseSpec::WilliamsonTc5 { steps, dt, ranks }
                } else {
                    CaseSpec::WilliamsonTc6 { steps, dt, ranks }
                }
            }
            other => {
                return Err(ScenarioError::BadValue {
                    field: format!("{cctx}.kind"),
                    what: format!(
                        "{other:?} is not a case kind (aqua_planet, tropical_cyclone, \
                         baroclinic_jet, supercell, held_suarez, williamson_tc5, williamson_tc6)"
                    ),
                })
            }
        };

        let physics = match req_str(j, ctx, "physics")? {
            "conventional" => PhysicsChoice::Conventional,
            "ml" => PhysicsChoice::Ml,
            "hybrid" => PhysicsChoice::Hybrid,
            other => {
                return Err(ScenarioError::BadValue {
                    field: format!("{ctx}.physics"),
                    what: format!("{other:?} is not one of conventional, ml, hybrid"),
                })
            }
        };
        let precision = match req_str(j, ctx, "precision")? {
            "double" => PrecisionMode::Double,
            "mixed" => PrecisionMode::Mixed,
            other => {
                return Err(ScenarioError::BadValue {
                    field: format!("{ctx}.precision"),
                    what: format!("{other:?} is not one of double, mixed"),
                })
            }
        };
        let level = req_u64(j, ctx, "level")? as u32;
        let nlev = req_u64(j, ctx, "nlev")? as usize;
        let target_j = req(j, ctx, "target")?;
        let tctx = format!("{ctx}.target");
        let target = match req_str(target_j, &tctx, "kind")? {
            "serial" => {
                expect_obj(target_j, &tctx, &["kind"])?;
                TargetSpec::Serial
            }
            "cpe_teams" => {
                expect_obj(target_j, &tctx, &["kind", "cpes"])?;
                TargetSpec::CpeTeams {
                    cpes: req_u64(target_j, &tctx, "cpes")? as usize,
                }
            }
            other => {
                return Err(ScenarioError::BadValue {
                    field: format!("{tctx}.kind"),
                    what: format!("{other:?} is not one of serial, cpe_teams"),
                })
            }
        };
        let dyn_mode = match req_str(j, ctx, "dyn_mode")? {
            "synchronous" => DynStepMode::Synchronous,
            "overlapped" => DynStepMode::Overlapped,
            other => {
                return Err(ScenarioError::BadValue {
                    field: format!("{ctx}.dyn_mode"),
                    what: format!("{other:?} is not one of synchronous, overlapped"),
                })
            }
        };
        let phy_steps = req_u64(j, ctx, "phy_steps")? as usize;

        let fault = match j.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let fctx = format!("{ctx}.fault");
                expect_obj(
                    f,
                    &fctx,
                    &["seed", "dispatch_rate", "dma_rate", "max_retries"],
                )?;
                Some(FaultSpec {
                    seed: req_u64(f, &fctx, "seed")?,
                    dispatch_rate: req_f64(f, &fctx, "dispatch_rate")?,
                    dma_rate: req_f64(f, &fctx, "dma_rate")?,
                    max_retries: req_u64(f, &fctx, "max_retries")? as u32,
                })
            }
        };
        let refinement = match j.get("refinement") {
            None | Some(Json::Null) => None,
            Some(r) => {
                let rctx = format!("{ctx}.refinement");
                expect_obj(
                    r,
                    &rctx,
                    &[
                        "lat_min_deg",
                        "lat_max_deg",
                        "lon_min_deg",
                        "lon_max_deg",
                        "weight",
                        "parts",
                        "refine_passes",
                    ],
                )?;
                Some(RefinementSpec {
                    lat_min_deg: req_f64(r, &rctx, "lat_min_deg")?,
                    lat_max_deg: req_f64(r, &rctx, "lat_max_deg")?,
                    lon_min_deg: req_f64(r, &rctx, "lon_min_deg")?,
                    lon_max_deg: req_f64(r, &rctx, "lon_max_deg")?,
                    weight: req_f64(r, &rctx, "weight")?,
                    parts: req_u64(r, &rctx, "parts")? as usize,
                    refine_passes: req_u64(r, &rctx, "refine_passes")? as usize,
                })
            }
        };

        let s = Scenario {
            name,
            case,
            physics,
            precision,
            level,
            nlev,
            target,
            dyn_mode,
            phy_steps,
            fault,
            refinement,
        };
        s.validate()?;
        Ok(s)
    }

    /// Cross-field rules: catch combinations the runner cannot execute with
    /// a typed error at load time, not a panic at run time.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.level > 5 {
            return Err(ScenarioError::BadValue {
                field: "config.level".into(),
                what: format!("level {} too large for a regression pin", self.level),
            });
        }
        if self.case.is_swe() {
            if self.precision != PrecisionMode::Double {
                return Err(ScenarioError::Unsupported {
                    what: "SWE cases run the f64 phased dyn step only (config.precision must be \
                           \"double\")"
                        .into(),
                });
            }
            if self.physics != PhysicsChoice::Conventional {
                return Err(ScenarioError::Unsupported {
                    what: "SWE cases carry no physics suite (config.physics must be \
                           \"conventional\")"
                        .into(),
                });
            }
            if self.fault.is_some() {
                return Err(ScenarioError::Unsupported {
                    what: "SWE cases take no fault plan (config.fault must be absent)".into(),
                });
            }
        } else {
            if self.dyn_mode == DynStepMode::Overlapped {
                return Err(ScenarioError::Unsupported {
                    what: "overlapped halo scheduling only applies to the distributed SWE cases \
                           (config.dyn_mode must be \"synchronous\" here)"
                        .into(),
                });
            }
            if self.phy_steps == 0 {
                return Err(ScenarioError::BadValue {
                    field: "config.phy_steps".into(),
                    what: "must be >= 1 for coupled cases".into(),
                });
            }
            if matches!(self.case, CaseSpec::HeldSuarez)
                && self.physics != PhysicsChoice::Conventional
            {
                return Err(ScenarioError::Unsupported {
                    what: "Held-Suarez replaces the physics suite entirely (config.physics must \
                           be \"conventional\")"
                        .into(),
                });
            }
        }
        if let Some(f) = &self.fault {
            for (field, rate) in [
                ("config.fault.dispatch_rate", f.dispatch_rate),
                ("config.fault.dma_rate", f.dma_rate),
            ] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ScenarioError::BadValue {
                        field: field.into(),
                        what: format!("rate {rate} outside [0, 1]"),
                    });
                }
            }
            if self.target == TargetSpec::Serial && f.dispatch_rate > 0.0 {
                return Err(ScenarioError::Unsupported {
                    what: "dispatch faults need a cpe_teams target to retry/degrade against".into(),
                });
            }
        }
        if let Some(r) = &self.refinement {
            if r.weight < 1.0 || !r.weight.is_finite() {
                return Err(ScenarioError::BadValue {
                    field: "config.refinement.weight".into(),
                    what: format!("{} must be a finite weight >= 1", r.weight),
                });
            }
            if r.parts < 2 {
                return Err(ScenarioError::BadValue {
                    field: "config.refinement.parts".into(),
                    what: "must be >= 2".into(),
                });
            }
            if r.lat_min_deg >= r.lat_max_deg {
                return Err(ScenarioError::BadValue {
                    field: "config.refinement.lat_min_deg".into(),
                    what: format!("window [{}, {}] is empty", r.lat_min_deg, r.lat_max_deg),
                });
            }
        }
        Ok(())
    }

    /// Serialize back to the `config` object. `from_json(to_json(s)) == s`.
    pub fn to_json(&self) -> Json {
        let case = match &self.case {
            CaseSpec::AquaPlanet => {
                Json::Obj(vec![("kind".into(), Json::Str("aqua_planet".into()))])
            }
            CaseSpec::TropicalCyclone { rmax, vmax } => Json::Obj(vec![
                ("kind".into(), Json::Str("tropical_cyclone".into())),
                ("rmax".into(), Json::Num(*rmax)),
                ("vmax".into(), Json::Num(*vmax)),
            ]),
            CaseSpec::BaroclinicJet { u0, perturb } => Json::Obj(vec![
                ("kind".into(), Json::Str("baroclinic_jet".into())),
                ("u0".into(), Json::Num(*u0)),
                ("perturb".into(), Json::Num(*perturb)),
            ]),
            CaseSpec::Supercell { lat_deg, lon_deg } => Json::Obj(vec![
                ("kind".into(), Json::Str("supercell".into())),
                ("lat_deg".into(), Json::Num(*lat_deg)),
                ("lon_deg".into(), Json::Num(*lon_deg)),
            ]),
            CaseSpec::HeldSuarez => {
                Json::Obj(vec![("kind".into(), Json::Str("held_suarez".into()))])
            }
            CaseSpec::WilliamsonTc5 { steps, dt, ranks }
            | CaseSpec::WilliamsonTc6 { steps, dt, ranks } => Json::Obj(vec![
                ("kind".into(), Json::Str(self.case.kind().into())),
                ("steps".into(), Json::Num(*steps as f64)),
                ("dt".into(), Json::Num(*dt)),
                ("ranks".into(), Json::Num(*ranks as f64)),
            ]),
        };
        let target = match self.target {
            TargetSpec::Serial => Json::Obj(vec![("kind".into(), Json::Str("serial".into()))]),
            TargetSpec::CpeTeams { cpes } => Json::Obj(vec![
                ("kind".into(), Json::Str("cpe_teams".into())),
                ("cpes".into(), Json::Num(cpes as f64)),
            ]),
        };
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("case".into(), case),
            (
                "physics".into(),
                Json::Str(
                    match self.physics {
                        PhysicsChoice::Conventional => "conventional",
                        PhysicsChoice::Ml => "ml",
                        PhysicsChoice::Hybrid => "hybrid",
                    }
                    .into(),
                ),
            ),
            (
                "precision".into(),
                Json::Str(
                    match self.precision {
                        PrecisionMode::Double => "double",
                        PrecisionMode::Mixed => "mixed",
                    }
                    .into(),
                ),
            ),
            ("level".into(), Json::Num(self.level as f64)),
            ("nlev".into(), Json::Num(self.nlev as f64)),
            ("target".into(), target),
            (
                "dyn_mode".into(),
                Json::Str(
                    match self.dyn_mode {
                        DynStepMode::Synchronous => "synchronous",
                        DynStepMode::Overlapped => "overlapped",
                    }
                    .into(),
                ),
            ),
            ("phy_steps".into(), Json::Num(self.phy_steps as f64)),
        ];
        if let Some(f) = &self.fault {
            fields.push((
                "fault".into(),
                Json::Obj(vec![
                    ("seed".into(), Json::Num(f.seed as f64)),
                    ("dispatch_rate".into(), Json::Num(f.dispatch_rate)),
                    ("dma_rate".into(), Json::Num(f.dma_rate)),
                    ("max_retries".into(), Json::Num(f.max_retries as f64)),
                ]),
            ));
        }
        if let Some(r) = &self.refinement {
            fields.push((
                "refinement".into(),
                Json::Obj(vec![
                    ("lat_min_deg".into(), Json::Num(r.lat_min_deg)),
                    ("lat_max_deg".into(), Json::Num(r.lat_max_deg)),
                    ("lon_min_deg".into(), Json::Num(r.lon_min_deg)),
                    ("lon_max_deg".into(), Json::Num(r.lon_max_deg)),
                    ("weight".into(), Json::Num(r.weight)),
                    ("parts".into(), Json::Num(r.parts as f64)),
                    ("refine_passes".into(), Json::Num(r.refine_passes as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

// ---------------------------------------------------------------------------
// Golden artifacts
// ---------------------------------------------------------------------------

/// The pinned outcome of one scenario run: bitwise hashes, diagnostics by
/// bit pattern, exact counters. Two runs match iff [`Self::diff`] is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArtifact {
    pub name: String,
    /// Named 16-hex FNV fingerprints ("state", "state.rank0", "partition").
    pub hashes: Vec<(String, String)>,
    /// Named diagnostics, compared by IEEE-754 bit pattern.
    pub diagnostics: Vec<(String, f64)>,
    /// Named counters, compared exactly.
    pub counters: Vec<(String, u64)>,
}

impl ScenarioArtifact {
    /// Every way `got` differs from this pin (empty = bitwise match). Keys
    /// present on either side but not the other count as drift.
    pub fn diff(&self, got: &ScenarioArtifact) -> Vec<String> {
        let mut drift = Vec::new();
        let keys =
            |v: &[(String, String)]| -> Vec<String> { v.iter().map(|(k, _)| k.clone()).collect() };
        if keys(&self.hashes) != keys(&got.hashes) {
            drift.push(format!(
                "hash set changed: pinned {:?}, got {:?}",
                keys(&self.hashes),
                keys(&got.hashes)
            ));
        }
        for (k, want) in &self.hashes {
            if let Some((_, g)) = got.hashes.iter().find(|(gk, _)| gk == k) {
                if g != want {
                    drift.push(format!("hash {k}: pinned {want}, got {g}"));
                }
            }
        }
        let dkeys =
            |v: &[(String, f64)]| -> Vec<String> { v.iter().map(|(k, _)| k.clone()).collect() };
        if dkeys(&self.diagnostics) != dkeys(&got.diagnostics) {
            drift.push(format!(
                "diagnostic set changed: pinned {:?}, got {:?}",
                dkeys(&self.diagnostics),
                dkeys(&got.diagnostics)
            ));
        }
        for (k, want) in &self.diagnostics {
            if let Some((_, g)) = got.diagnostics.iter().find(|(gk, _)| gk == k) {
                if g.to_bits() != want.to_bits() {
                    drift.push(format!(
                        "diagnostic {k}: pinned {want:?} ({:016x}), got {g:?} ({:016x})",
                        want.to_bits(),
                        g.to_bits()
                    ));
                }
            }
        }
        let ckeys =
            |v: &[(String, u64)]| -> Vec<String> { v.iter().map(|(k, _)| k.clone()).collect() };
        if ckeys(&self.counters) != ckeys(&got.counters) {
            drift.push(format!(
                "counter set changed: pinned {:?}, got {:?}",
                ckeys(&self.counters),
                ckeys(&got.counters)
            ));
        }
        for (k, want) in &self.counters {
            if let Some((_, g)) = got.counters.iter().find(|(gk, _)| gk == k) {
                if g != want {
                    drift.push(format!("counter {k}: pinned {want}, got {g}"));
                }
            }
        }
        drift
    }

    /// Serialize as the `golden` object of a scenario document. Diagnostics
    /// are stored twice: human-readable numbers plus authoritative bit
    /// patterns (`bits` is what [`Self::from_json`] reads back).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "hashes".into(),
                Json::Obj(
                    self.hashes
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "diagnostics".into(),
                Json::Obj(
                    self.diagnostics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "bits".into(),
                Json::Obj(
                    self.diagnostics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(format!("{:016x}", v.to_bits()))))
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict parse of a `golden` object.
    pub fn from_json(j: &Json, ctx: &str) -> Result<Self, ScenarioError> {
        expect_obj(
            j,
            ctx,
            &["name", "hashes", "diagnostics", "bits", "counters"],
        )?;
        let name = req_str(j, ctx, "name")?.to_string();
        let hashes_j = req(j, ctx, "hashes")?
            .as_obj()
            .ok_or_else(|| ScenarioError::BadValue {
                field: format!("{ctx}.hashes"),
                what: "expected an object".into(),
            })?;
        let mut hashes = Vec::new();
        for (k, v) in hashes_j {
            let s = v.as_str().ok_or_else(|| ScenarioError::BadValue {
                field: format!("{ctx}.hashes.{k}"),
                what: "expected a hex string".into(),
            })?;
            if s.len() != 16 || u64::from_str_radix(s, 16).is_err() {
                return Err(ScenarioError::BadValue {
                    field: format!("{ctx}.hashes.{k}"),
                    what: format!("{s:?} is not a 16-hex-digit hash"),
                });
            }
            hashes.push((k.clone(), s.to_string()));
        }
        // `bits` is authoritative for diagnostics; `diagnostics` is the
        // readable shadow and must list the same keys.
        let bits_j = req(j, ctx, "bits")?
            .as_obj()
            .ok_or_else(|| ScenarioError::BadValue {
                field: format!("{ctx}.bits"),
                what: "expected an object".into(),
            })?;
        let readable_j =
            req(j, ctx, "diagnostics")?
                .as_obj()
                .ok_or_else(|| ScenarioError::BadValue {
                    field: format!("{ctx}.diagnostics"),
                    what: "expected an object".into(),
                })?;
        if bits_j.len() != readable_j.len()
            || bits_j.iter().zip(readable_j).any(|((a, _), (b, _))| a != b)
        {
            return Err(ScenarioError::BadValue {
                field: format!("{ctx}.bits"),
                what: "keys disagree with .diagnostics".into(),
            });
        }
        let mut diagnostics = Vec::new();
        for (k, v) in bits_j {
            let s = v.as_str().ok_or_else(|| ScenarioError::BadValue {
                field: format!("{ctx}.bits.{k}"),
                what: "expected a hex string".into(),
            })?;
            let b = u64::from_str_radix(s, 16).map_err(|_| ScenarioError::BadValue {
                field: format!("{ctx}.bits.{k}"),
                what: format!("{s:?} is not a hex bit pattern"),
            })?;
            diagnostics.push((k.clone(), f64::from_bits(b)));
        }
        let counters_j =
            req(j, ctx, "counters")?
                .as_obj()
                .ok_or_else(|| ScenarioError::BadValue {
                    field: format!("{ctx}.counters"),
                    what: "expected an object".into(),
                })?;
        let mut counters = Vec::new();
        for (k, v) in counters_j {
            let n = v.as_u64().ok_or_else(|| ScenarioError::BadValue {
                field: format!("{ctx}.counters.{k}"),
                what: "expected a non-negative integer".into(),
            })?;
            counters.push((k.clone(), n));
        }
        Ok(ScenarioArtifact {
            name,
            hashes,
            diagnostics,
            counters,
        })
    }
}

/// Read a full scenario document: `{schema, config, golden?}`.
pub fn parse_scenario_file(
    text: &str,
) -> Result<(Scenario, Option<ScenarioArtifact>), ScenarioError> {
    let doc = Json::parse(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
    expect_obj(&doc, "document", &["schema", "config", "golden"])?;
    match req_str(&doc, "document", "schema")? {
        SCENARIO_SCHEMA => {}
        other => {
            return Err(ScenarioError::BadValue {
                field: "document.schema".into(),
                what: format!("{other:?}, expected {SCENARIO_SCHEMA:?}"),
            })
        }
    }
    let config = Scenario::from_json(req(&doc, "document", "config")?, "config")?;
    let golden = match doc.get("golden") {
        None | Some(Json::Null) => None,
        Some(g) => Some(ScenarioArtifact::from_json(g, "golden")?),
    };
    Ok((config, golden))
}

/// Serialize a full scenario document.
pub fn scenario_file_json(config: &Scenario, golden: Option<&ScenarioArtifact>) -> String {
    let mut fields = vec![
        ("schema".into(), Json::Str(SCENARIO_SCHEMA.into())),
        ("config".into(), config.to_json()),
    ];
    if let Some(g) = golden {
        fields.push(("golden".into(), g.to_json()));
    }
    Json::Obj(fields).pretty()
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// What one scenario execution produced.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub artifact: ScenarioArtifact,
    /// Metrics-registry snapshot of the run (rank 0 for distributed cases) —
    /// the per-scenario JSON document CI uploads.
    pub metrics_json: String,
}

/// Executes [`Scenario`]s deterministically.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner;

impl ScenarioRunner {
    pub fn new() -> Self {
        ScenarioRunner
    }

    /// Run `s` to completion and fingerprint the outcome. Deterministic: the
    /// same scenario on the same build produces a bitwise-identical
    /// [`ScenarioArtifact`] on every run.
    pub fn run(&self, s: &Scenario) -> Result<ScenarioRun, ScenarioError> {
        s.validate()?;
        let mut run = match &s.case {
            CaseSpec::WilliamsonTc5 { steps, dt, ranks } => run_swe(s, *steps, *dt, *ranks, true)?,
            CaseSpec::WilliamsonTc6 { steps, dt, ranks } => run_swe(s, *steps, *dt, *ranks, false)?,
            _ => match s.precision {
                PrecisionMode::Double => run_coupled::<f64>(s)?,
                PrecisionMode::Mixed => run_coupled::<f32>(s)?,
            },
        };
        if let Some(r) = &s.refinement {
            append_refinement(&mut run.artifact, r, s.level)?;
        }
        Ok(run)
    }
}

fn make_substrate(target: TargetSpec) -> Substrate {
    match target {
        TargetSpec::Serial => Substrate::serial(),
        TargetSpec::CpeTeams { cpes } => Substrate::cpe_teams(cpes),
    }
}

fn run_coupled<R: Real>(s: &Scenario) -> Result<ScenarioRun, ScenarioError> {
    let cfg = RunConfig::for_level(s.level, s.nlev)
        .with_precision(s.precision)
        .with_ml_physics(s.physics == PhysicsChoice::Ml);
    let sub = make_substrate(s.target);
    if let Some(f) = &s.fault {
        sub.arm_faults(
            FaultPlan::new(f.seed)
                .with_rate(FaultSite::Dispatch, f.dispatch_rate)
                .with_rate(FaultSite::Dma, f.dma_rate)
                .with_max_retries(f.max_retries),
        );
    }
    let mut model = GristModel::<R>::with_substrate(cfg, sub);
    match &s.case {
        CaseSpec::AquaPlanet | CaseSpec::HeldSuarez => {}
        CaseSpec::TropicalCyclone { rmax, vmax } => {
            let tc = TropicalCyclone {
                rmax: *rmax,
                vmax: *vmax,
                ..Default::default()
            };
            add_tropical_cyclone(&mut model, &tc);
        }
        CaseSpec::BaroclinicJet { u0, perturb } => add_baroclinic_jet(&mut model, *u0, *perturb),
        CaseSpec::Supercell { lat_deg, lon_deg } => {
            add_supercell_patch(&mut model, lat_deg.to_radians(), lon_deg.to_radians())
        }
        CaseSpec::WilliamsonTc5 { .. } | CaseSpec::WilliamsonTc6 { .. } => unreachable!(),
    }
    if s.physics == PhysicsChoice::Hybrid {
        model.set_hybrid_physics();
    }

    if matches!(s.case, CaseSpec::HeldSuarez) {
        // Dry dynamical-core benchmark: HS forcing every dyn step, no moist
        // physics. A "phy step" counts one physics-cadence window of dyn
        // steps so run lengths stay comparable across cases.
        let hs = HeldSuarez::default();
        let dt = model.config.dt_dyn;
        let n = s.phy_steps * model.config.dyn_per_phy().max(1);
        for _ in 0..n {
            model.step_dyn();
            apply_held_suarez(&mut model, &hs, dt);
        }
    } else {
        let window = s.phy_steps as f64 * model.config.dt_phy;
        if s.fault.is_some() {
            let out = model.advance_resilient(window);
            if !out.completed {
                return Err(ScenarioError::Unsupported {
                    what: format!(
                        "fault plan overwhelmed the recovery ladder: {}",
                        out.final_health.diagnosis
                    ),
                });
            }
        } else {
            model.advance(window);
        }
    }

    let health = model.health();
    let ps = model.surface_pressure();
    let ps_mean = ps.iter().sum::<f64>() / ps.len() as f64;
    let u_max = model
        .state
        .u
        .to_f64_vec()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b.abs()));
    let precip_total = model.precip_accum.iter().sum::<f64>();
    let artifact = ScenarioArtifact {
        name: s.name.clone(),
        hashes: vec![("state".into(), format!("{:016x}", model.state_hash()))],
        diagnostics: vec![
            ("ps_mean".into(), ps_mean),
            ("u_max".into(), u_max),
            ("precip_total".into(), precip_total),
            ("time_s".into(), model.time_s),
        ],
        counters: vec![
            (
                "health.scans".into(),
                model.metrics().counter("health.scans"),
            ),
            (
                "checkpoint.captures".into(),
                model.metrics().counter("checkpoint.captures"),
            ),
            (
                "recovery.restores".into(),
                model.metrics().counter("recovery.restores"),
            ),
            (
                "fault.injected".into(),
                model.metrics().counter("fault.injected"),
            ),
            (
                "fault.retries".into(),
                model.metrics().counter("fault.retries"),
            ),
            (
                "fault.degradations".into(),
                model.metrics().counter("fault.degradations"),
            ),
            (
                "health.final_corrupt".into(),
                (health.state == crate::health::RunState::Corrupt) as u64,
            ),
        ],
    };
    Ok(ScenarioRun {
        artifact,
        metrics_json: model.metrics_json(),
    })
}

fn swe_init(solver: &mut SweSolver<f64>, tc5: bool) -> SweState<f64> {
    if tc5 {
        let mut state = williamson_tc5::<f64>(&solver.mesh);
        install_tc5_mountain(solver, &mut state);
        state
    } else {
        williamson_tc6::<f64>(&solver.mesh)
    }
}

fn run_swe(
    s: &Scenario,
    steps: usize,
    dt: f64,
    ranks: usize,
    tc5: bool,
) -> Result<ScenarioRun, ScenarioError> {
    let mesh = HexMesh::build(s.level);
    let partition = Partition::build(&mesh, ranks, 2);
    let layout = HaloLayout::build(&mesh, &partition, 2);

    // Serial reference for the conservation diagnostics: the distributed
    // owned cells are bitwise-equal to this trajectory (pinned by the
    // overlap suite), so global invariants are computed where they are
    // cheap and unambiguous.
    let mut sref = SweSolver::<f64>::new(mesh.clone());
    let mut sstate = swe_init(&mut sref, tc5);
    let mass0 = sref.total_mass(&sstate);
    let energy0 = sref.total_energy(&sstate);
    for _ in 0..steps {
        sref.step_rk3(&mut sstate, dt);
    }
    let mass = sref.total_mass(&sstate);
    let energy = sref.total_energy(&sstate);

    let level = s.level;
    let target = s.target;
    let mode = s.dyn_mode;
    let layout_ref = &layout;
    let (results, _) = run_world(ranks, move |mut ctx| {
        let mesh = HexMesh::build(level);
        let locale = &layout_ref.locales[ctx.rank];
        let split = locale.phase_split(&mesh, 1);
        let sub = make_substrate(target);
        let mut solver = SweSolver::<f64>::with_substrate(mesh, sub.clone());
        let phases = SwePhases::build(&solver.mesh, &split.interior_cells);
        let mut state = swe_init(&mut solver, tc5);
        let mut messages = 0u64;
        for step in 0..steps {
            let receipt = crate::overlap::swe_dyn_step(
                &mut solver,
                &mut state,
                dt,
                &mut ctx,
                locale,
                &phases,
                700 + step as u32,
                mode,
                Some(sub.metrics()),
                None,
            )
            .expect("fault-free exchange");
            messages += receipt.messages_sent;
        }
        let rank_hash = hash_f64_bits(&[state.h.as_slice(), state.u.as_slice()]);
        let metrics_json = if ctx.rank == 0 {
            Some(sub.metrics().snapshot().to_json())
        } else {
            None
        };
        (rank_hash, messages, metrics_json)
    });

    let mut hashes = Vec::with_capacity(ranks);
    let mut messages_total = 0u64;
    let mut metrics_json = String::from("{}\n");
    for (rank, (h, m, mj)) in results.into_iter().enumerate() {
        hashes.push((format!("state.rank{rank}"), format!("{h:016x}")));
        messages_total += m;
        if let Some(mj) = mj {
            metrics_json = mj;
        }
    }
    let artifact = ScenarioArtifact {
        name: s.name.clone(),
        hashes,
        diagnostics: vec![
            ("mass".into(), mass),
            ("energy".into(), energy),
            ("mass_drift".into(), (mass - mass0) / mass0),
            ("energy_drift".into(), (energy - energy0) / energy0),
        ],
        counters: vec![("swe.messages".into(), messages_total)],
    };
    Ok(ScenarioRun {
        artifact,
        metrics_json,
    })
}

/// Build the refinement-aware partition, gate its quality, and pin it.
fn append_refinement(
    artifact: &mut ScenarioArtifact,
    r: &RefinementSpec,
    level: u32,
) -> Result<(), ScenarioError> {
    let mesh = HexMesh::build(level);
    let window = r.window();
    let n_window = window.cells(&mesh).len();
    if n_window == 0 {
        return Err(ScenarioError::BadValue {
            field: "config.refinement".into(),
            what: "window contains no cells at this level".into(),
        });
    }
    let p = Partition::build_refined(&mesh, r.parts, r.refine_passes, &window);
    let wq = p.weighted_quality(&mesh, &window.weights(&mesh));
    // Quality gates: the refinement-aware partition must still balance the
    // weighted load, and the windowed mesh statistics must look like the
    // global grid (the precondition for densifying the region).
    if wq.imbalance > 1.30 {
        return Err(ScenarioError::BadValue {
            field: "config.refinement".into(),
            what: format!("weighted imbalance {} exceeds the 1.30 gate", wq.imbalance),
        });
    }
    let mq = windowed_mesh_quality(&mesh, &window);
    if mq.orthogonality_defect.max > 1e-9 {
        return Err(ScenarioError::BadValue {
            field: "config.refinement".into(),
            what: format!(
                "windowed orthogonality defect {} exceeds the 1e-9 gate",
                mq.orthogonality_defect.max
            ),
        });
    }
    artifact.hashes.push((
        "partition".into(),
        format!("{:016x}", hash_u32_seq(&p.part)),
    ));
    artifact
        .diagnostics
        .push(("refine.weighted_imbalance".into(), wq.imbalance));
    artifact
        .diagnostics
        .push(("refine.edge_cut".into(), wq.edge_cut as f64));
    artifact
        .diagnostics
        .push(("refine.regularity_mean".into(), mq.cell_regularity.mean));
    artifact
        .counters
        .push(("refine.window_cells".into(), n_window as u64));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario {
            name: "unit_aqua".into(),
            case: CaseSpec::AquaPlanet,
            physics: PhysicsChoice::Conventional,
            precision: PrecisionMode::Double,
            level: 2,
            nlev: 6,
            target: TargetSpec::Serial,
            dyn_mode: DynStepMode::Synchronous,
            phy_steps: 1,
            fault: None,
            refinement: None,
        }
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut s = tiny();
        s.case = CaseSpec::TropicalCyclone {
            rmax: 0.25,
            vmax: 30.0,
        };
        s.fault = Some(FaultSpec {
            seed: 42,
            dispatch_rate: 0.05,
            dma_rate: 0.0,
            max_retries: 2,
        });
        s.target = TargetSpec::CpeTeams { cpes: 8 };
        s.refinement = Some(RefinementSpec {
            lat_min_deg: 10.0,
            lat_max_deg: 45.0,
            lon_min_deg: -30.0,
            lon_max_deg: 40.0,
            weight: 4.0,
            parts: 8,
            refine_passes: 2,
        });
        let text = scenario_file_json(&s, None);
        let (back, golden) = parse_scenario_file(&text).unwrap();
        assert_eq!(back, s);
        assert!(golden.is_none());
        // Twice through: serialization is a fixed point.
        assert_eq!(scenario_file_json(&back, None), text);
    }

    #[test]
    fn unknown_fields_are_named_errors_not_panics() {
        let text = scenario_file_json(&tiny(), None);
        let with_typo = text.replace("\"phy_steps\"", "\"phy_stepz\"");
        match parse_scenario_file(&with_typo) {
            Err(ScenarioError::UnknownField { field, .. }) => {
                assert_eq!(field, "config.phy_stepz")
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
        match parse_scenario_file(&text.replace("\"nlev\"", "\"nlevels\"")) {
            Err(ScenarioError::UnknownField { field, .. }) => {
                assert_eq!(field, "config.nlevels")
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn missing_and_malformed_fields_are_named() {
        match parse_scenario_file("{\"schema\": \"grist-scenario-v1\"}") {
            Err(ScenarioError::MissingField { field }) => assert_eq!(field, "document.config"),
            other => panic!("{other:?}"),
        }
        match parse_scenario_file("not json at all") {
            Err(ScenarioError::Parse(_)) => {}
            other => panic!("{other:?}"),
        }
        let mut s = tiny();
        s.name = String::new();
        let err = Scenario::from_json(&s.to_json(), "config").unwrap_err();
        match err {
            ScenarioError::BadValue { field, .. } => assert_eq!(field, "config.name"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cross_field_validation_catches_unrunnable_combos() {
        let mut s = tiny();
        s.case = CaseSpec::WilliamsonTc5 {
            steps: 2,
            dt: 300.0,
            ranks: 2,
        };
        s.precision = PrecisionMode::Mixed;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Unsupported { .. })
        ));
        let mut s = tiny();
        s.dyn_mode = DynStepMode::Overlapped;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Unsupported { .. })
        ));
        let mut s = tiny();
        s.fault = Some(FaultSpec {
            seed: 1,
            dispatch_rate: 0.5,
            dma_rate: 0.0,
            max_retries: 1,
        });
        // Dispatch faults on a serial target cannot retry/degrade.
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Unsupported { .. })
        ));
    }

    #[test]
    fn runner_is_bitwise_stable_across_runs() {
        let s = tiny();
        let a = ScenarioRunner::new().run(&s).unwrap();
        let b = ScenarioRunner::new().run(&s).unwrap();
        assert_eq!(a.artifact, b.artifact);
        assert!(a.artifact.diff(&b.artifact).is_empty());
    }

    #[test]
    fn artifact_roundtrips_and_diffs_name_the_drift() {
        let s = tiny();
        let run = ScenarioRunner::new().run(&s).unwrap();
        let text = scenario_file_json(&s, Some(&run.artifact));
        let (_, golden) = parse_scenario_file(&text).unwrap();
        let golden = golden.unwrap();
        assert_eq!(golden, run.artifact);
        // Perturb the pinned state hash: the diff must say which hash moved.
        let mut perturbed = golden.clone();
        perturbed.hashes[0].1 = "0000000000000000".into();
        let drift = perturbed.diff(&run.artifact);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("hash state"), "{}", drift[0]);
    }
}
