//! Checkpoint/restart for the coupled model.
//!
//! The recovery ladder's last rung (a halo exchange that failed even after
//! retries, or a prognostic field that blew up under reduced precision)
//! rolls the model back to its last known-good state. That only works if
//! the checkpoint is *bitwise* faithful: a restored-then-stepped run must be
//! indistinguishable from an uninterrupted one, or "recovery" silently forks
//! the trajectory.
//!
//! JSON's decimal numbers cannot carry `f64` exactly (and the in-tree
//! [`Json`] writer refuses non-finite values outright), so prognostic data
//! is serialized as *bit patterns*: each `f64` becomes 16 lowercase hex
//! digits of its IEEE-754 representation, concatenated into one string per
//! field. That round-trips every value — including NaN payloads mid-blowup —
//! exactly, through the same dependency-free [`Json`] module the benchmark
//! baselines use. Working-precision (`R = f32`) fields widen losslessly to
//! `f64` on capture and narrow back exactly on restore (`f32 → f64` is
//! value-preserving in both directions).
//!
//! Every capture ticks `checkpoint.captures` and adds the serialized size to
//! `checkpoint.bytes` in the model's metrics registry.

use crate::model::GristModel;
use grist_dycore::{Field2, Real};
use std::fmt;
use sunway_sim::Json;

/// Schema tag guarding against feeding some other JSON document (e.g. a
/// bench baseline) to [`GristModel::restore`].
pub const CHECKPOINT_SCHEMA: &str = "grist-checkpoint-v1";

/// A malformed or mismatched checkpoint document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    pub what: String,
}

impl CheckpointError {
    fn new(what: impl Into<String>) -> Self {
        CheckpointError { what: what.into() }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint error: {}", self.what)
    }
}

impl std::error::Error for CheckpointError {}

/// Encode a slice of `f64` as concatenated 16-hex-digit IEEE-754 bit
/// patterns — the bitwise-lossless wire format of checkpoint fields.
pub fn encode_bits(values: &[f64]) -> String {
    use fmt::Write;
    let mut s = String::with_capacity(values.len() * 16);
    for v in values {
        write!(s, "{:016x}", v.to_bits()).expect("writing to String cannot fail");
    }
    s
}

/// Decode a string produced by [`encode_bits`].
pub fn decode_bits(s: &str) -> Result<Vec<f64>, CheckpointError> {
    if !s.len().is_multiple_of(16) {
        return Err(CheckpointError::new(format!(
            "bit-pattern string length {} is not a multiple of 16",
            s.len()
        )));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 16);
    for chunk in bytes.chunks_exact(16) {
        let hex = std::str::from_utf8(chunk)
            .map_err(|_| CheckpointError::new("bit-pattern string is not ASCII"))?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| CheckpointError::new(format!("invalid hex chunk {hex:?}")))?;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

/// A captured model state: prognostics, surface, clocks — everything
/// [`GristModel::restore`] needs to resume bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    doc: Json,
    bytes: usize,
}

impl Checkpoint {
    /// The serialized document (what would be written to disk).
    pub fn to_json(&self) -> String {
        self.doc.pretty()
    }

    /// Parse a serialized checkpoint, verifying the schema tag.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let doc = Json::parse(text)
            .map_err(|e| CheckpointError::new(format!("unparsable document: {e}")))?;
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(CHECKPOINT_SCHEMA) => {}
            other => {
                return Err(CheckpointError::new(format!(
                    "schema tag {other:?}, expected {CHECKPOINT_SCHEMA:?}"
                )))
            }
        }
        Ok(Checkpoint {
            doc,
            bytes: text.len(),
        })
    }

    /// Serialized size in bytes (what `checkpoint.bytes` meters).
    pub fn byte_len(&self) -> usize {
        self.bytes
    }

    pub fn doc(&self) -> &Json {
        &self.doc
    }

    fn str_field(&self, section: &str, key: &str) -> Result<&str, CheckpointError> {
        self.doc
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(|v| v.as_str())
            .ok_or_else(|| CheckpointError::new(format!("missing field {section}.{key}")))
    }

    fn bits_field(&self, section: &str, key: &str, n: usize) -> Result<Vec<f64>, CheckpointError> {
        let v = decode_bits(self.str_field(section, key)?)?;
        if v.len() != n {
            return Err(CheckpointError::new(format!(
                "field {section}.{key} holds {} values, model expects {n}",
                v.len()
            )));
        }
        Ok(v)
    }
}

fn field_bits<R: Real>(f: &Field2<R>) -> Json {
    Json::Str(encode_bits(&f.to_f64_vec()))
}

fn restore_field<R: Real>(dst: &mut Field2<R>, src: &[f64]) {
    for (d, &v) in dst.as_mut_slice().iter_mut().zip(src) {
        *d = R::from_f64(v);
    }
}

impl<R: Real> GristModel<R> {
    /// Capture a restartable snapshot of the prognostic + tracer state, the
    /// surface, and the model clocks. Ticks `checkpoint.captures` and
    /// `checkpoint.bytes` on the shared metrics registry.
    pub fn checkpoint(&self) -> Checkpoint {
        let shape = Json::Obj(vec![
            ("nlev".into(), Json::Num(self.config.nlev as f64)),
            ("ncells".into(), Json::Num(self.state.dpi.ncols() as f64)),
            ("nedges".into(), Json::Num(self.state.u.ncols() as f64)),
            (
                "ntracers".into(),
                Json::Num(self.state.tracers.len() as f64),
            ),
        ]);
        let state = Json::Obj(vec![
            ("dpi".into(), field_bits(&self.state.dpi)),
            ("theta_m".into(), field_bits(&self.state.theta_m)),
            ("u".into(), field_bits(&self.state.u)),
            ("w".into(), field_bits(&self.state.w)),
            ("phi".into(), field_bits(&self.state.phi)),
            (
                "tracers".into(),
                Json::Arr(self.state.tracers.iter().map(field_bits).collect()),
            ),
        ]);
        let surface = Json::Obj(vec![
            ("tskin".into(), Json::Str(encode_bits(&self.surface.tskin))),
            ("coszr".into(), Json::Str(encode_bits(&self.surface.coszr))),
            (
                "albedo".into(),
                Json::Str(encode_bits(&self.surface.albedo)),
            ),
            (
                "ocean".into(),
                Json::Str(
                    self.surface
                        .ocean
                        .iter()
                        .map(|&o| if o { '1' } else { '0' })
                        .collect(),
                ),
            ),
        ]);
        let clock = Json::Obj(vec![
            ("time_s".into(), Json::Str(encode_bits(&[self.time_s]))),
            (
                "declination".into(),
                Json::Str(encode_bits(&[self.declination])),
            ),
            ("dyn_steps".into(), Json::Num(self.dyn_steps_taken as f64)),
            (
                "precip_accum".into(),
                Json::Str(encode_bits(&self.precip_accum)),
            ),
        ]);
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str(CHECKPOINT_SCHEMA.into())),
            ("precision".into(), Json::Str(R::NAME.into())),
            ("shape".into(), shape),
            ("clock".into(), clock),
            ("state".into(), state),
            ("surface".into(), surface),
        ]);
        let bytes = doc.pretty().len();
        let m = self.metrics();
        m.counter_add("checkpoint.captures", 1);
        m.counter_add("checkpoint.bytes", bytes as u64);
        Checkpoint { doc, bytes }
    }

    /// Roll the model back to `ck`. Shapes are validated against this model;
    /// prognostics, tracers, surface, and clocks are restored bit-for-bit
    /// (diagnostic caches like `last_diag` are rebuilt by the next physics
    /// step). Ticks `recovery.restores` on success.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        // Working precision must match before anything else: an f64 document
        // restored into an f32 model with identical shapes used to pass every
        // check below and silently truncate each field through `from_f64`.
        let precision = ck
            .doc
            .get("precision")
            .and_then(|p| p.as_str())
            .ok_or_else(|| CheckpointError::new("missing precision tag"))?;
        if precision != R::NAME {
            return Err(CheckpointError::new(format!(
                "precision mismatch: checkpoint captured from an {precision} model cannot \
                 restore into an {} model",
                R::NAME
            )));
        }
        let shape_of = |key: &str| {
            ck.doc
                .get("shape")
                .and_then(|s| s.get(key))
                .and_then(|v| v.as_u64())
                .ok_or_else(|| CheckpointError::new(format!("missing shape.{key}")))
        };
        let (nlev, ncells, nedges, ntracers) = (
            shape_of("nlev")? as usize,
            shape_of("ncells")? as usize,
            shape_of("nedges")? as usize,
            shape_of("ntracers")? as usize,
        );
        if nlev != self.config.nlev
            || ncells != self.state.dpi.ncols()
            || nedges != self.state.u.ncols()
            || ntracers != self.state.tracers.len()
        {
            return Err(CheckpointError::new(format!(
                "shape mismatch: checkpoint ({nlev} lev, {ncells} cells, {nedges} edges, \
                 {ntracers} tracers) vs model ({} lev, {} cells, {} edges, {} tracers)",
                self.config.nlev,
                self.state.dpi.ncols(),
                self.state.u.ncols(),
                self.state.tracers.len()
            )));
        }
        // Decode everything fallibly *before* touching the model, so a
        // truncated document cannot leave a half-restored state behind.
        let dpi = ck.bits_field("state", "dpi", self.state.dpi.as_slice().len())?;
        let theta_m = ck.bits_field("state", "theta_m", self.state.theta_m.as_slice().len())?;
        let u = ck.bits_field("state", "u", self.state.u.as_slice().len())?;
        let w = ck.bits_field("state", "w", self.state.w.as_slice().len())?;
        let phi = ck.bits_field("state", "phi", self.state.phi.as_slice().len())?;
        let tracer_docs = ck
            .doc
            .get("state")
            .and_then(|s| s.get("tracers"))
            .and_then(|v| v.as_arr())
            .ok_or_else(|| CheckpointError::new("missing field state.tracers"))?;
        if tracer_docs.len() != ntracers {
            return Err(CheckpointError::new("tracer array length disagrees"));
        }
        let mut tracers = Vec::with_capacity(ntracers);
        for (i, t) in tracer_docs.iter().enumerate() {
            let s = t
                .as_str()
                .ok_or_else(|| CheckpointError::new(format!("tracer {i} is not a string")))?;
            let v = decode_bits(s)?;
            if v.len() != self.state.tracers[i].as_slice().len() {
                return Err(CheckpointError::new(format!("tracer {i} length mismatch")));
            }
            tracers.push(v);
        }
        let tskin = ck.bits_field("surface", "tskin", self.surface.tskin.len())?;
        let coszr = ck.bits_field("surface", "coszr", self.surface.coszr.len())?;
        let albedo = ck.bits_field("surface", "albedo", self.surface.albedo.len())?;
        let ocean_str = ck.str_field("surface", "ocean")?;
        if ocean_str.len() != self.surface.ocean.len() {
            return Err(CheckpointError::new("ocean mask length mismatch"));
        }
        let time_s = ck.bits_field("clock", "time_s", 1)?[0];
        let declination = ck.bits_field("clock", "declination", 1)?[0];
        let precip = ck.bits_field("clock", "precip_accum", self.precip_accum.len())?;
        let dyn_steps = ck
            .doc
            .get("clock")
            .and_then(|c| c.get("dyn_steps"))
            .and_then(|v| v.as_u64())
            .ok_or_else(|| CheckpointError::new("missing clock.dyn_steps"))?
            as usize;

        restore_field(&mut self.state.dpi, &dpi);
        restore_field(&mut self.state.theta_m, &theta_m);
        restore_field(&mut self.state.u, &u);
        restore_field(&mut self.state.w, &w);
        restore_field(&mut self.state.phi, &phi);
        for (field, v) in self.state.tracers.iter_mut().zip(&tracers) {
            restore_field(field, v);
        }
        self.surface.tskin = tskin;
        self.surface.coszr = coszr;
        self.surface.albedo = albedo;
        for (o, b) in self.surface.ocean.iter_mut().zip(ocean_str.bytes()) {
            *o = b == b'1';
        }
        self.time_s = time_s;
        self.declination = declination;
        self.precip_accum = precip;
        self.dyn_steps_taken = dyn_steps;
        self.metrics().counter_add("recovery.restores", 1);
        Ok(())
    }

    /// FNV-1a hash over the bit patterns of every prognostic field, the
    /// surface skin temperature, and the model clock — a cheap fingerprint
    /// for "two runs converged to the identical state".
    pub fn state_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for f in [
            &self.state.dpi,
            &self.state.theta_m,
            &self.state.w,
            &self.state.phi,
        ] {
            h.update(f.as_slice());
        }
        h.update(&self.state.u.to_f64_vec());
        for t in &self.state.tracers {
            h.update(&t.to_f64_vec());
        }
        h.update(&self.surface.tskin);
        h.update(&self.precip_accum);
        h.update(&[self.time_s, self.declination]);
        h.finish()
    }
}

/// FNV-1a fingerprint over the IEEE-754 bit patterns of `chunks`, in order —
/// the same hash family as [`GristModel::state_hash`], exposed so scenario
/// pins can fingerprint arbitrary field collections (SWE states, initial
/// conditions) with one shared definition.
pub fn hash_f64_bits(chunks: &[&[f64]]) -> u64 {
    let mut h = Fnv::new();
    for c in chunks {
        h.update(c);
    }
    h.finish()
}

/// FNV-1a fingerprint of a `u32` sequence (little-endian bytes) — used to
/// pin partition assignments in scenario goldens.
pub fn hash_u32_seq(values: &[u32]) -> u64 {
    let mut h = Fnv::new();
    for v in values {
        for b in v.to_le_bytes() {
            h.0 ^= b as u64;
            h.0 = h.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h.finish()
}

/// Minimal FNV-1a over f64 bit patterns.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, values: &[f64]) {
        for v in values {
            for b in v.to_bits().to_le_bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    #[test]
    fn bit_pattern_roundtrip_is_lossless_including_nan_payloads() {
        let values = [
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            1.0e-308,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
        ];
        let decoded = decode_bits(&encode_bits(&values)).unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} round-tripped as {b}");
        }
    }

    #[test]
    fn malformed_bit_strings_are_typed_errors() {
        assert!(decode_bits("0123456789abcde").is_err(), "length % 16 != 0");
        assert!(decode_bits("zzzzzzzzzzzzzzzz").is_err(), "non-hex");
        assert!(decode_bits("").unwrap().is_empty());
    }

    #[test]
    fn checkpoint_serializes_parses_and_restores_bitwise() {
        let mut m = GristModel::<f64>::new(RunConfig::for_level(2, 6));
        m.advance(2.0 * m.config.dt_phy);
        let ck = m.checkpoint();
        let text = ck.to_json();
        assert_eq!(ck.byte_len(), text.len());
        let reparsed = Checkpoint::from_json(&text).unwrap();
        // Wreck the model, then restore from the re-parsed document.
        let hash = m.state_hash();
        let t = m.time_s;
        m.advance(m.config.dt_phy);
        assert_ne!(m.state_hash(), hash, "advancing must change the hash");
        m.restore(&reparsed).unwrap();
        assert_eq!(m.state_hash(), hash, "restore must be bit-for-bit");
        assert_eq!(m.time_s, t);
        let metrics = m.metrics();
        assert_eq!(metrics.counter("checkpoint.captures"), 1);
        assert_eq!(metrics.counter("checkpoint.bytes"), ck.byte_len() as u64);
        assert_eq!(metrics.counter("recovery.restores"), 1);
    }

    #[test]
    fn restore_rejects_wrong_schema_and_wrong_shape() {
        let m = GristModel::<f64>::new(RunConfig::for_level(2, 6));
        let err = Checkpoint::from_json(r#"{"schema": "grist-bench-v1"}"#).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        // A checkpoint from a different vertical resolution must not restore.
        let other = GristModel::<f64>::new(RunConfig::for_level(2, 8)).checkpoint();
        let mut m = m;
        let err = m.restore(&other).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn cross_precision_restore_is_rejected_naming_both_precisions() {
        // Regression: the shapes of an f64 and an f32 model at the same
        // resolution are identical, so `restore` used to accept the foreign
        // document and quietly narrow every field through `from_f64`.
        let cfg = RunConfig::for_level(2, 6);
        let ck64 = GristModel::<f64>::new(cfg.clone()).checkpoint();
        let ck32 = GristModel::<f32>::new(cfg.clone()).checkpoint();

        let mut m32 = GristModel::<f32>::new(cfg.clone());
        m32.advance(m32.config.dt_phy);
        let hash = m32.state_hash();
        let err = m32.restore(&ck64).unwrap_err();
        assert!(
            err.to_string().contains("precision mismatch")
                && err.to_string().contains("f64")
                && err.to_string().contains("f32"),
            "{err}"
        );
        assert_eq!(m32.state_hash(), hash, "rejection must not touch state");
        assert_eq!(m32.metrics().counter("recovery.restores"), 0);

        let mut m64 = GristModel::<f64>::new(cfg);
        let err = m64.restore(&ck32).unwrap_err();
        assert!(err.to_string().contains("precision mismatch"), "{err}");

        // A document missing the tag entirely is rejected, not assumed.
        let mut doc_text = ck64.to_json();
        doc_text = doc_text.replace("\"precision\": \"f64\",", "");
        let untagged = Checkpoint::from_json(&doc_text).unwrap();
        let err = m64.restore(&untagged).unwrap_err();
        assert!(err.to_string().contains("precision"), "{err}");
    }

    #[test]
    fn f32_model_checkpoints_restore_its_working_precision_exactly() {
        let mut m = GristModel::<f32>::new(RunConfig::for_level(2, 6));
        m.advance(2.0 * m.config.dt_phy);
        let ck = m.checkpoint();
        let u_before: Vec<f32> = m.state.u.as_slice().to_vec();
        let hash = m.state_hash();
        m.advance(m.config.dt_phy);
        m.restore(&Checkpoint::from_json(&ck.to_json()).unwrap())
            .unwrap();
        assert_eq!(m.state_hash(), hash);
        assert_eq!(
            m.state.u.as_slice(),
            &u_before[..],
            "f32 u restored exactly"
        );
    }
}
