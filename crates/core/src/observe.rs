//! Wiring the model loop into the live telemetry plane.
//!
//! [`GristModel::advance_observed`] is the observed counterpart of
//! [`GristModel::advance`]: same integration, plus one epoch-advance timing
//! record and one streaming physics sample into an
//! [`ObsPlane`] — mass and total energy from the
//! analytic budget (conservation drift), CFL margin and NaN census from the
//! health scan, and the tracer's live ring-drop count. The plane's
//! `HealthWatch` turns threshold crossings into typed alerts, which the
//! caller gets back per epoch (and the SLO's alert budget sees globally).
//!
//! When the plane is disabled the whole sampling block is skipped behind
//! one relaxed atomic load — `advance_observed` then costs exactly one
//! `Instant::now` pair over plain `advance`.

use crate::health::{HealthThresholds, RunState};
use crate::model::GristModel;
use grist_dycore::{energy_budget, Real};
use grist_obs::{Alert, HealthSample, ObsPlane};
use std::time::Instant;

impl<R: Real> GristModel<R> {
    /// Advance `seconds` of model time, recording the epoch's wall time and
    /// one health sample into `plane`. Returns the alerts this epoch raised
    /// (empty for a healthy epoch or a disabled plane).
    pub fn advance_observed(&mut self, seconds: f64, plane: &ObsPlane) -> Vec<Alert> {
        let t0 = Instant::now();
        self.advance(seconds);
        plane.record_epoch_advance_ns(t0.elapsed().as_nanos() as u64);
        self.sample_health(plane)
    }

    /// Sample the streaming diagnostics into `plane` without advancing:
    /// energy/mass budget, health scan (under the watch's CFL/wind bounds,
    /// so both layers agree on "unstable"), and live trace drops.
    pub fn sample_health(&mut self, plane: &ObsPlane) -> Vec<Alert> {
        if !plane.is_enabled() {
            return Vec::new();
        }
        let wt = plane.watch().thresholds();
        let report = self.health_with(&HealthThresholds {
            max_wind: wt.max_wind,
            max_cfl: wt.max_cfl,
        });
        let budget = energy_budget(&mut self.solver, &self.state);
        plane.ingest_health(HealthSample {
            epoch: self.dyn_steps() as u64,
            mass: budget.mass,
            energy: budget.total(),
            cfl: report.cfl,
            max_abs_u: report.max_abs_u,
            non_finite: report.non_finite + report.non_physical,
            corrupt: report.state == RunState::Corrupt,
            trace_dropped: self.metrics().tracer().dropped_total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use grist_obs::AlertKind;

    fn model() -> GristModel<f64> {
        GristModel::<f64>::new(RunConfig::for_level(2, 6))
    }

    #[test]
    fn observed_advance_matches_plain_advance_bitwise() {
        let plane = ObsPlane::default();
        let mut observed = model();
        let mut plain = model();
        for _ in 0..3 {
            observed.advance_observed(observed.config.dt_dyn, &plane);
            plain.advance(plain.config.dt_dyn);
        }
        assert_eq!(
            observed.state_hash(),
            plain.state_hash(),
            "observation must not perturb the integration"
        );
        let epochs = plane.epoch_advance_snapshot();
        assert_eq!(epochs.count, 3);
        assert!(epochs.min > 0, "epoch advance took measurable time");
        assert_eq!(plane.watch().ingested(), 3);
    }

    #[test]
    fn healthy_short_run_raises_no_alerts() {
        let plane = ObsPlane::default();
        let mut m = model();
        for _ in 0..5 {
            let alerts = m.advance_observed(m.config.dt_dyn, &plane);
            assert!(alerts.is_empty(), "unexpected alerts: {alerts:?}");
        }
        assert_eq!(plane.watch().alert_count(), 0);
    }

    #[test]
    fn corrupted_state_raises_a_corrupt_alert() {
        let plane = ObsPlane::default();
        let mut m = model();
        m.sample_health(&plane); // healthy baseline
        m.state.u.set(0, 0, f64::NAN);
        let alerts = m.sample_health(&plane);
        assert!(
            alerts.iter().any(|a| a.kind == AlertKind::Corrupt),
            "NaN poke must alert: {alerts:?}"
        );
    }

    #[test]
    fn disabled_plane_skips_sampling_entirely() {
        let plane = ObsPlane::disabled();
        let mut m = model();
        let scans_before = m.metrics().counter("health.scans");
        assert!(m.advance_observed(m.config.dt_dyn, &plane).is_empty());
        assert_eq!(
            m.metrics().counter("health.scans"),
            scans_before,
            "no health scan on the disabled path"
        );
        assert!(plane.epoch_advance_snapshot().is_empty());
    }
}
