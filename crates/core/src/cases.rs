//! Idealized initial-value cases: the §3.4.2 validation hierarchy
//! ("idealized tropical cyclone, supercell, baroclinic waves") plus the
//! synthetic stand-in for the Fig. 7 "23.7" Doksuri extreme-rainfall event
//! (the real case needs ERA5/CMPA data this reproduction cannot access).

use crate::model::GristModel;
use grist_dycore::Real;
use grist_mesh::Vec3;

/// Parameters of an idealized tropical cyclone (Rankine-style vortex with a
/// warm, moist core).
#[derive(Debug, Clone, Copy)]
pub struct TropicalCyclone {
    /// Vortex centre (lat, lon) \[rad\].
    pub lat: f64,
    pub lon: f64,
    /// Radius of maximum wind \[rad on the unit sphere\].
    pub rmax: f64,
    /// Maximum tangential wind \[m/s\].
    pub vmax: f64,
    /// Core warming \[K\] and moistening (fraction of qv added).
    pub warm_core: f64,
    pub moist_core: f64,
}

impl Default for TropicalCyclone {
    fn default() -> Self {
        // A Doksuri-like cyclone approaching landfall latitude.
        TropicalCyclone {
            lat: 20f64.to_radians(),
            lon: 120f64.to_radians(),
            rmax: 0.03,
            vmax: 35.0,
            warm_core: 4.0,
            moist_core: 0.6,
        }
    }
}

fn unit_from_latlon(lat: f64, lon: f64) -> Vec3 {
    Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
}

/// Superimpose an idealized tropical cyclone on a model state.
pub fn add_tropical_cyclone<R: Real>(model: &mut GristModel<R>, tc: &TropicalCyclone) {
    let center = unit_from_latlon(tc.lat, tc.lon);
    let mesh = model.solver.mesh.clone();
    let nlev = model.config.nlev;

    // Tangential wind: Rankine vortex v(r) = vmax · (r/rmax) inside,
    // vmax · (rmax/r)^0.6 outside, decaying with altitude.
    for e in 0..mesh.n_edges() {
        let m = mesh.edge_mid[e];
        let r = m.arc_dist(center);
        if r > 10.0 * tc.rmax {
            continue;
        }
        let v = if r < tc.rmax {
            tc.vmax * r / tc.rmax
        } else {
            tc.vmax * (tc.rmax / r).powf(0.6)
        };
        // Cyclonic (counter-clockwise in the NH): tangent direction =
        // ẑ-consistent circulation around the centre.
        let t_dir = center.cross(m);
        if t_dir.norm() < 1e-12 {
            continue;
        }
        let t_dir = t_dir.normalized();
        for k in 0..nlev {
            let frac = (k as f64 + 0.5) / nlev as f64; // 1 at surface
            let amp = v * frac.powf(0.5);
            let du = amp * t_dir.dot(mesh.edge_normal[e]);
            let cur = model.state.u.at(k, e);
            model.state.u.set(k, e, cur + R::from_f64(du));
        }
    }

    // Warm, moist core.
    for c in 0..mesh.n_cells() {
        let r = mesh.cell_xyz[c].arc_dist(center);
        if r > 6.0 * tc.rmax {
            continue;
        }
        let shape = (-(r / (2.0 * tc.rmax)).powi(2)).exp();
        for k in 0..nlev {
            let frac = (k as f64 + 0.5) / nlev as f64;
            let dpi = model.state.dpi.at(k, c);
            let theta = model.state.theta_m.at(k, c) / dpi;
            model.state.theta_m.set(
                k,
                c,
                dpi * (theta + tc.warm_core * shape * (1.0 - frac * 0.5)),
            );
            let q = model.state.tracers[0].at(k, c).to_f64();
            model.state.tracers[0].set(k, c, R::from_f64(q * (1.0 + tc.moist_core * shape)));
        }
    }
}

/// Baroclinic-wave case: a zonal jet in thermal-wind-like balance plus a
/// localized perturbation (Jablonowski–Williamson in spirit).
pub fn add_baroclinic_jet<R: Real>(model: &mut GristModel<R>, u0: f64, perturb: f64) {
    let mesh = model.solver.mesh.clone();
    let nlev = model.config.nlev;
    let pert_center = unit_from_latlon(40f64.to_radians(), 20f64.to_radians());
    for e in 0..mesh.n_edges() {
        let m = mesh.edge_mid[e];
        let lat = m.lat();
        let zonal = Vec3::new(0.0, 0.0, 1.0).cross(m);
        if zonal.norm() < 1e-12 {
            continue;
        }
        let zonal = zonal.normalized();
        for k in 0..nlev {
            let frac = 1.0 - (k as f64 + 0.5) / nlev as f64; // 1 at top
            let jet = u0 * (2.0 * lat).sin().powi(2) * frac.powf(1.5);
            let bump = perturb * (-(m.arc_dist(pert_center) / 0.1).powi(2)).exp();
            let du = (jet + bump) * zonal.dot(mesh.edge_normal[e]);
            let cur = model.state.u.at(k, e);
            model.state.u.set(k, e, cur + R::from_f64(du));
        }
    }
}

/// Supercell-style case: a single strongly unstable, moist, sheared column
/// region (convection-resolving testbed for the precision hierarchy).
pub fn add_supercell_patch<R: Real>(model: &mut GristModel<R>, lat: f64, lon: f64) {
    let center = unit_from_latlon(lat, lon);
    let mesh = model.solver.mesh.clone();
    let nlev = model.config.nlev;
    for c in 0..mesh.n_cells() {
        let r = mesh.cell_xyz[c].arc_dist(center);
        if r > 0.15 {
            continue;
        }
        let shape = (-(r / 0.07).powi(2)).exp();
        for k in 0..nlev {
            let frac = (k as f64 + 0.5) / nlev as f64;
            if frac > 0.7 {
                // Hot, very moist boundary layer.
                let dpi = model.state.dpi.at(k, c);
                let theta = model.state.theta_m.at(k, c) / dpi;
                model.state.theta_m.set(k, c, dpi * (theta + 6.0 * shape));
                let q = model.state.tracers[0].at(k, c).to_f64();
                model.state.tracers[0].set(k, c, R::from_f64(q + 6e-3 * shape));
            }
        }
    }
}

/// Held–Suarez (1994) forcing constants.
#[derive(Debug, Clone, Copy)]
pub struct HeldSuarez {
    /// Rayleigh-friction rate at the surface \[1/s\] (kf = 1/day).
    pub kf: f64,
    /// Thermal-relaxation rate in the free atmosphere \[1/s\] (ka = 1/40 day).
    pub ka: f64,
    /// Thermal-relaxation rate in the tropical boundary layer \[1/s\]
    /// (ks = 1/4 day).
    pub ks: f64,
    /// Equator-to-pole equilibrium temperature contrast \[K\].
    pub delta_t_y: f64,
    /// Static-stability contrast \[K\].
    pub delta_theta_z: f64,
    /// σ above which boundary-layer damping is active.
    pub sigma_b: f64,
}

impl Default for HeldSuarez {
    fn default() -> Self {
        HeldSuarez {
            kf: 1.0 / 86_400.0,
            ka: 1.0 / (40.0 * 86_400.0),
            ks: 1.0 / (4.0 * 86_400.0),
            delta_t_y: 60.0,
            delta_theta_z: 10.0,
            sigma_b: 0.7,
        }
    }
}

/// Apply one `dt`-long shot of Held–Suarez forcing: Newtonian relaxation of
/// potential temperature toward the analytic radiative equilibrium
/// `teq(φ, σ)` plus Rayleigh drag on the winds for σ > σ_b. This replaces
/// the moist physics suite for the dry dynamical-core benchmark — the
/// standard "climate in a box" circulation test every dycore paper runs.
pub fn apply_held_suarez<R: Real>(model: &mut GristModel<R>, hs: &HeldSuarez, dt: f64) {
    let nlev = model.config.nlev;
    let n_cells = model.solver.mesh.n_cells();
    let t_ref = model.config.t_ref;
    // θ relaxation (σ ≈ mid-level fraction on the uniform coordinate).
    for c in 0..n_cells {
        let lat = model.lats[c];
        let (s2, c2) = (lat.sin().powi(2), lat.cos().powi(2));
        for k in 0..nlev {
            let sigma = (k as f64 + 0.5) / nlev as f64;
            // Equilibrium *potential* temperature: the HS94 teq with the
            // (p/p0)^κ factor folded out, floored at the stratospheric 200 K
            // expressed against the reference state.
            let theta_eq =
                (t_ref - hs.delta_t_y * s2 - hs.delta_theta_z * (sigma.max(1e-3)).ln() * c2)
                    .max(200.0);
            let kt = hs.ka
                + (hs.ks - hs.ka)
                    * ((sigma - hs.sigma_b) / (1.0 - hs.sigma_b)).max(0.0)
                    * c2.powi(2);
            let dpi = model.state.dpi.at(k, c);
            let theta = model.state.theta_m.at(k, c) / dpi;
            let relaxed = theta + (theta_eq - theta) * (kt * dt).min(1.0);
            model.state.theta_m.set(k, c, dpi * relaxed);
        }
    }
    // Rayleigh drag on the lower-level winds.
    let n_edges = model.state.u.ncols();
    for k in 0..nlev {
        let sigma = (k as f64 + 0.5) / nlev as f64;
        let kv = hs.kf * ((sigma - hs.sigma_b) / (1.0 - hs.sigma_b)).max(0.0);
        if kv == 0.0 {
            continue;
        }
        let damp = R::from_f64(1.0 - (kv * dt).min(1.0));
        for e in 0..n_edges {
            let u = model.state.u.at(k, e);
            model.state.u.set(k, e, u * damp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    fn model() -> GristModel<f64> {
        GristModel::new(RunConfig::for_level(2, 10))
    }

    #[test]
    fn tropical_cyclone_injects_cyclonic_circulation() {
        // A level-2 mesh has ~0.16 rad spacing: use a broad vortex so several
        // dual vertices sample the core.
        let mut m = model();
        let tc = TropicalCyclone {
            rmax: 0.25,
            ..Default::default()
        };
        add_tropical_cyclone(&mut m, &tc);
        // Relative vorticity near the vortex centre must be strongly positive
        // (NH cyclone). vorticity_diag is level-fastest: index = v·nlev + k.
        let vor = m.solver.vorticity_diag(&m.state);
        let center = unit_from_latlon(tc.lat, tc.lon);
        let nlev = 10;
        let surf_vor_max = (0..m.solver.mesh.n_verts())
            .filter(|&v| m.solver.mesh.vert_xyz[v].arc_dist(center) < 2.0 * tc.rmax)
            .map(|v| vor[v * nlev + nlev - 1])
            .fold(f64::MIN, f64::max);
        assert!(surf_vor_max > 1e-5, "cyclone vorticity {surf_vor_max}");
    }

    #[test]
    fn cyclone_wind_peaks_near_rmax() {
        let mut m = model();
        let tc = TropicalCyclone {
            rmax: 0.12,
            ..Default::default()
        };
        add_tropical_cyclone(&mut m, &tc);
        let center = unit_from_latlon(tc.lat, tc.lon);
        let nlev = m.config.nlev;
        let speed_at = |r_lo: f64, r_hi: f64| -> f64 {
            let mesh = &m.solver.mesh;
            let mut best: f64 = 0.0;
            for e in 0..mesh.n_edges() {
                let r = mesh.edge_mid[e].arc_dist(center);
                if r >= r_lo && r < r_hi {
                    best = best.max(m.state.u.at(nlev - 1, e).abs());
                }
            }
            best
        };
        let near = speed_at(0.05, 0.2);
        let far = speed_at(0.5, 0.8);
        assert!(
            near > 2.0 * far,
            "wind must decay outward: near {near}, far {far}"
        );
    }

    #[test]
    fn cyclone_case_integrates_stably() {
        let mut m = model();
        add_tropical_cyclone(&mut m, &TropicalCyclone::default());
        m.advance(m.config.dt_phy * 2.0);
        assert!(m.state.u.as_slice().iter().all(|x| x.is_finite()));
        let umax = m
            .state
            .u
            .as_slice()
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(umax < 150.0, "cyclone blew up: {umax} m/s");
    }

    #[test]
    fn baroclinic_jet_is_westerly_at_midlatitudes() {
        let mut m = model();
        add_baroclinic_jet(&mut m, 30.0, 1.0);
        // Column winds via the coupling extraction.
        let cols = crate::coupling::extract_columns(&mut m.solver, &m.state, &m.surface);
        let mut mid_u = 0.0;
        let mut n = 0;
        for (c, col) in cols.iter().enumerate() {
            let lat = m.lats[c].to_degrees();
            if (35.0..55.0).contains(&lat) {
                mid_u += col.u[0]; // top level, strongest jet
                n += 1;
            }
        }
        assert!(
            mid_u / n as f64 > 10.0,
            "jet missing: {} m/s",
            mid_u / n as f64
        );
    }

    #[test]
    fn held_suarez_drives_an_equator_pole_gradient_and_damps_surface_wind() {
        let mut m = model();
        add_baroclinic_jet(&mut m, 20.0, 0.5);
        let hs = HeldSuarez::default();
        let nlev = m.config.nlev;
        let surf_speed = |m: &GristModel<f64>| -> f64 {
            (0..m.state.u.ncols())
                .map(|e| m.state.u.at(nlev - 1, e).abs())
                .fold(0.0, f64::max)
        };
        let u0 = surf_speed(&m);
        // A long relaxation window (no dynamics, ~25 days) must imprint
        // teq's shape — the polar surface cools at the slow ka rate, so the
        // contrast takes weeks to emerge, as in HS94.
        for _ in 0..200 {
            apply_held_suarez(&mut m, &hs, 10_800.0);
        }
        let eq = (0..m.n_cells())
            .min_by(|&a, &b| m.lats[a].abs().partial_cmp(&m.lats[b].abs()).unwrap())
            .unwrap();
        let pole = (0..m.n_cells())
            .max_by(|&a, &b| m.lats[a].abs().partial_cmp(&m.lats[b].abs()).unwrap())
            .unwrap();
        let theta_at = |m: &GristModel<f64>, c: usize| {
            m.state.theta_m.at(nlev - 1, c) / m.state.dpi.at(nlev - 1, c)
        };
        let contrast = theta_at(&m, eq) - theta_at(&m, pole);
        assert!(contrast > 20.0, "equator-pole contrast {contrast} K");
        assert!(
            surf_speed(&m) < 0.2 * u0,
            "Rayleigh drag too weak: {} -> {}",
            u0,
            surf_speed(&m)
        );
        // And the forced model integrates stably with dynamics on.
        let mut m2 = model();
        add_baroclinic_jet(&mut m2, 20.0, 0.5);
        let dt = m2.config.dt_dyn;
        for _ in 0..4 {
            m2.step_dyn();
            apply_held_suarez(&mut m2, &hs, dt);
        }
        assert!(m2.state.u.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn supercell_patch_is_convectively_unstable() {
        let mut m = model();
        add_supercell_patch(&mut m, 0.6, 0.3);
        m.step_physics();
        // The patch must rain through the conventional suite.
        let total: f64 = m.last_diag.iter().map(|d| d.precip).sum();
        assert!(total > 0.0, "supercell did not precipitate");
    }
}
