//! The physics–dynamics coupling interface (§3.2.4): "computing the
//! dynamical core and passing input variables (U, V, T, Q, P, tskin, coszr)
//! from the physics-dynamics coupling interface of GRIST model to our
//! trained ML-physics suite … which returns full physical tendencies and
//! diagnostic variables back … for the next-step dynamical core integration."
//!
//! [`extract_columns`] builds the per-cell [`Column`]s from the dycore
//! state; [`apply_tendencies`] folds the returned Q1/Q2-style tendencies back
//! into Θ and the moisture tracers.

use grist_dycore::constants::GRAVITY;
use grist_dycore::operators::cell_velocity;
use grist_dycore::{Field2, NhSolver, NhState, Real};
use grist_physics::{Column, Tendencies};

/// Per-cell surface boundary state carried by the model.
#[derive(Debug, Clone)]
pub struct SurfaceState {
    /// Skin temperature (SST over ocean) \[K\].
    pub tskin: Vec<f64>,
    /// Cosine of solar zenith angle.
    pub coszr: Vec<f64>,
    /// Surface albedo.
    pub albedo: Vec<f64>,
    /// Ocean mask.
    pub ocean: Vec<bool>,
}

impl SurfaceState {
    /// Aqua-planet surface: zonally symmetric SST peaking at the equator,
    /// as in the paper's `demo-g6-aqua` artifact configuration.
    pub fn aqua_planet(lats: &[f64]) -> Self {
        let tskin = lats
            .iter()
            .map(|&lat| 271.0 + 29.0 * (lat.cos().powi(2)).max(0.0))
            .collect();
        SurfaceState {
            tskin,
            coszr: vec![0.0; lats.len()],
            albedo: vec![0.08; lats.len()],
            ocean: vec![true; lats.len()],
        }
    }

    /// Carve an idealized rectangular continent into an aqua-planet surface
    /// (land mask + higher albedo), activating the Noah-MP-lite land model
    /// there — §4.4: "an active land surface model has been coupled to the
    /// atmosphere model".
    pub fn add_continent(
        &mut self,
        lats: &[f64],
        lons: &[f64],
        lat_range: (f64, f64),
        lon_range: (f64, f64),
    ) {
        for i in 0..lats.len() {
            if lats[i] >= lat_range.0
                && lats[i] <= lat_range.1
                && lons[i] >= lon_range.0
                && lons[i] <= lon_range.1
            {
                self.ocean[i] = false;
                self.albedo[i] = 0.2;
            }
        }
    }

    /// Update `coszr` from the time of day and cell coordinates.
    /// `declination` in radians, `utc_hours` in \[0, 24).
    pub fn update_sun(&mut self, lats: &[f64], lons: &[f64], declination: f64, utc_hours: f64) {
        for (i, cz) in self.coszr.iter_mut().enumerate() {
            let hour_angle = (utc_hours / 12.0 - 1.0) * std::f64::consts::PI + lons[i];
            *cz = (lats[i].sin() * declination.sin()
                + lats[i].cos() * declination.cos() * hour_angle.cos())
            .max(0.0);
        }
    }
}

/// Extract physics input columns from the dycore state for every cell.
pub fn extract_columns<R: Real>(
    solver: &mut NhSolver<R>,
    state: &NhState<R>,
    surface: &SurfaceState,
) -> Vec<Column> {
    let nlev = state.dpi.nlev();
    let nc = state.dpi.ncols();
    // Cell-centred winds.
    let mut ue = Field2::<R>::zeros(nlev, nc);
    let mut un = Field2::<R>::zeros(nlev, nc);
    cell_velocity(
        &solver.sub.clone(),
        &solver.mesh,
        &state.u,
        &mut ue,
        &mut un,
    );
    let (pres, theta, _dphi, exner) = solver.diagnose_fields(state);

    let mut cols = Vec::with_capacity(nc);
    for c in 0..nc {
        let mut p = Vec::with_capacity(nlev);
        let mut dp = Vec::with_capacity(nlev);
        let mut z = Vec::with_capacity(nlev);
        let mut t = Vec::with_capacity(nlev);
        for k in 0..nlev {
            p.push(pres.at(k, c));
            dp.push(state.dpi.at(k, c));
            z.push(0.5 * (state.phi.at(k, c) + state.phi.at(k + 1, c)) / GRAVITY);
            t.push(theta.at(k, c) * exner.at(k, c));
        }
        let getq = |idx: usize| -> Vec<f64> {
            if idx < state.tracers.len() {
                (0..nlev)
                    .map(|k| state.tracers[idx].at(k, c).to_f64())
                    .collect()
            } else {
                vec![0.0; nlev]
            }
        };
        cols.push(Column {
            p,
            dp,
            z,
            t,
            qv: getq(0),
            qc: getq(1),
            qr: getq(2),
            u: (0..nlev).map(|k| ue.at(k, c).to_f64()).collect(),
            v: (0..nlev).map(|k| un.at(k, c).to_f64()).collect(),
            tskin: surface.tskin[c],
            coszr: surface.coszr[c],
            albedo: surface.albedo[c],
            ocean: surface.ocean[c],
        });
    }
    cols
}

/// Fold physics tendencies back into the prognostic state over `dt` seconds:
/// `dT/dt` enters Θ through `dθ = dT/Π`; moisture tendencies update the
/// tracers (clamped non-negative).
pub fn apply_tendencies<R: Real>(
    solver: &mut NhSolver<R>,
    state: &mut NhState<R>,
    tends: &[Tendencies],
    dt: f64,
) {
    let nlev = state.dpi.nlev();
    let nc = state.dpi.ncols();
    assert_eq!(tends.len(), nc);
    // Refresh Π for the θ conversion.
    let exner = solver.diagnose_fields(state).3.clone();

    for c in 0..nc {
        let tend = &tends[c];
        for k in 0..nlev {
            let dpi = state.dpi.at(k, c);
            let d_theta = tend.dt_dt[k] * dt / exner.at(k, c);
            *state.theta_m.at_mut(k, c) += dpi * d_theta;
        }
        let mut setq = |idx: usize, dq: &[f64]| {
            if idx < state.tracers.len() {
                for k in 0..nlev {
                    let q = state.tracers[idx].at(k, c).to_f64() + dq[k] * dt;
                    state.tracers[idx].set(k, c, R::from_f64(q.max(0.0)));
                }
            }
        };
        setq(0, &tend.dqv_dt);
        setq(1, &tend.dqc_dt);
        setq(2, &tend.dqr_dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grist_dycore::hevi::NhConfig;
    use grist_dycore::VerticalCoord;
    use grist_mesh::HexMesh;

    fn setup() -> (NhSolver<f64>, NhState<f64>, SurfaceState) {
        let mesh = HexMesh::build(2);
        let lats: Vec<f64> = mesh.cell_xyz.iter().map(|p| p.lat()).collect();
        let solver = NhSolver::new(
            mesh,
            VerticalCoord::uniform(10),
            NhConfig {
                ntracers: 3,
                ..Default::default()
            },
        );
        let state = solver.isothermal_rest_state(285.0, 1.0e5);
        let surface = SurfaceState::aqua_planet(&lats);
        (solver, state, surface)
    }

    #[test]
    fn extracted_columns_are_physical() {
        let (mut solver, state, surface) = setup();
        let cols = extract_columns(&mut solver, &state, &surface);
        assert_eq!(cols.len(), solver.mesh.n_cells());
        for col in &cols {
            assert!(
                col.p.windows(2).all(|w| w[1] > w[0]),
                "p increases downward"
            );
            assert!(col.z.windows(2).all(|w| w[1] < w[0]), "z decreases with k");
            assert!(col.t.iter().all(|&t| (150.0..350.0).contains(&t)));
            assert!((250.0..305.0).contains(&col.tskin));
        }
    }

    #[test]
    fn aqua_planet_sst_peaks_at_equator() {
        let lats = vec![0.0, 0.8, -0.8, 1.4];
        let s = SurfaceState::aqua_planet(&lats);
        assert!(s.tskin[0] > s.tskin[1]);
        assert!((s.tskin[1] - s.tskin[2]).abs() < 1e-12);
        assert!(s.tskin[3] < s.tskin[1]);
        assert!((s.tskin[0] - 300.0).abs() < 0.1);
    }

    #[test]
    fn solar_zenith_tracks_longitude_and_time() {
        let lats = vec![0.0, 0.0];
        let lons = vec![0.0, std::f64::consts::PI];
        let mut s = SurfaceState::aqua_planet(&lats);
        s.update_sun(&lats, &lons, 0.0, 12.0); // noon at lon 0
        assert!((s.coszr[0] - 1.0).abs() < 1e-9, "noon overhead sun");
        assert_eq!(s.coszr[1], 0.0, "midnight on the far side");
    }

    #[test]
    fn heating_tendency_warms_the_state_through_theta() {
        let (mut solver, mut state, surface) = setup();
        let nc = solver.mesh.n_cells();
        let before = extract_columns(&mut solver, &state, &surface);
        let mut tends = vec![Tendencies::zeros(10); nc];
        for t in &mut tends {
            t.dt_dt[5] = 1.0 / 3600.0; // 1 K/hour at level 5
        }
        apply_tendencies(&mut solver, &mut state, &tends, 3600.0);
        let after = extract_columns(&mut solver, &state, &surface);
        for c in 0..nc {
            // Heating at fixed layer volume also raises p and Π through the
            // EOS, so the diagnosed ΔT slightly exceeds ∫Q1 dt (≈ ×(1+κγ))
            // until the dynamics adjusts — accept the physical band.
            let dt5 = after[c].t[5] - before[c].t[5];
            assert!((0.9..1.7).contains(&dt5), "ΔT = {dt5}, expected ≈ 1–1.5 K");
            let dt3 = (after[c].t[3] - before[c].t[3]).abs();
            assert!(dt3 < 0.05, "level 3 should be untouched, ΔT = {dt3}");
        }
    }

    #[test]
    fn moisture_tendencies_clamp_at_zero() {
        let (mut solver, mut state, _) = setup();
        let nc = solver.mesh.n_cells();
        let mut tends = vec![Tendencies::zeros(10); nc];
        for t in &mut tends {
            t.dqv_dt = vec![-1.0; 10]; // absurd drying
        }
        apply_tendencies(&mut solver, &mut state, &tends, 100.0);
        assert!(state.tracers[0].as_slice().iter().all(|&q| q >= 0.0));
    }
}
