//! Training-data generation and ML-suite training (§3.2.1–3.2.2).
//!
//! The paper trains on 30 km coarse-grained 5 km GRIST-GSRM output, deriving
//! Q1/Q2 "as residuals". This module reproduces the *workflow* with the
//! substitute data source documented in DESIGN.md: it runs **our own model**
//! at a finer grid level with the conventional physics suite, coarse-grains
//! the coupling-interface columns to a coarser grid level, and uses the
//! conventional suite's total tendencies — exactly the physics residual of
//! the (T, q) budgets — as the Q1/Q2 targets. Four forcing regimes stand in
//! for the Table-1 ENSO/MJO periods.

use crate::config::RunConfig;
use crate::coupling::extract_columns;
use crate::mlsuite::MlSuite;
use crate::model::{GristModel, PhysicsEngine};
use grist_mesh::HexMesh;
use grist_ml::data::{ChannelNormalizer, Dataset, Sample, TRAINING_PERIODS};
use grist_ml::models::{CNN_INPUT_CHANNELS, CNN_OUTPUT_CHANNELS};
use grist_ml::{Adam, AdamConfig};
use grist_physics::Column;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mapping of fine-grid cells onto their nearest coarse-grid cell.
#[derive(Debug, Clone)]
pub struct CoarseMap {
    pub n_coarse: usize,
    pub fine_to_coarse: Vec<u32>,
}

impl CoarseMap {
    /// Nearest-coarse-cell assignment by great-circle distance.
    pub fn build(fine: &HexMesh, coarse: &HexMesh) -> Self {
        let fine_to_coarse = fine
            .cell_xyz
            .iter()
            .map(|&p| {
                (0..coarse.n_cells())
                    .max_by(|&a, &b| {
                        coarse.cell_xyz[a]
                            .dot(p)
                            .partial_cmp(&coarse.cell_xyz[b].dot(p))
                            .unwrap()
                    })
                    .unwrap() as u32
            })
            .collect();
        CoarseMap {
            n_coarse: coarse.n_cells(),
            fine_to_coarse,
        }
    }

    /// Average a per-fine-cell vector onto the coarse cells.
    pub fn average(&self, fine_vals: &[f64]) -> Vec<f64> {
        let mut sum = vec![0.0; self.n_coarse];
        let mut cnt = vec![0usize; self.n_coarse];
        for (f, &c) in self.fine_to_coarse.iter().enumerate() {
            sum[c as usize] += fine_vals[f];
            cnt[c as usize] += 1;
        }
        for (s, n) in sum.iter_mut().zip(&cnt) {
            if *n > 0 {
                *s /= *n as f64;
            }
        }
        sum
    }
}

/// Coarse-grain a set of fine columns (profile-wise averaging).
pub fn coarse_grain_columns(map: &CoarseMap, fine: &[Column]) -> Vec<Column> {
    assert_eq!(fine.len(), map.fine_to_coarse.len());
    let nlev = fine[0].nlev();
    let template = &fine[0];
    let mut out: Vec<Column> = (0..map.n_coarse)
        .map(|_| Column {
            p: vec![0.0; nlev],
            dp: vec![0.0; nlev],
            z: vec![0.0; nlev],
            t: vec![0.0; nlev],
            qv: vec![0.0; nlev],
            qc: vec![0.0; nlev],
            qr: vec![0.0; nlev],
            u: vec![0.0; nlev],
            v: vec![0.0; nlev],
            tskin: 0.0,
            coszr: 0.0,
            albedo: template.albedo,
            ocean: template.ocean,
        })
        .collect();
    let mut counts = vec![0usize; map.n_coarse];
    for (f, col) in fine.iter().enumerate() {
        let c = map.fine_to_coarse[f] as usize;
        counts[c] += 1;
        let o = &mut out[c];
        for k in 0..nlev {
            o.p[k] += col.p[k];
            o.dp[k] += col.dp[k];
            o.z[k] += col.z[k];
            o.t[k] += col.t[k];
            o.qv[k] += col.qv[k];
            o.qc[k] += col.qc[k];
            o.qr[k] += col.qr[k];
            o.u[k] += col.u[k];
            o.v[k] += col.v[k];
        }
        o.tskin += col.tskin;
        o.coszr += col.coszr;
    }
    for (o, &n) in out.iter_mut().zip(&counts) {
        if n == 0 {
            continue;
        }
        let inv = 1.0 / n as f64;
        for k in 0..nlev {
            o.p[k] *= inv;
            o.dp[k] *= inv;
            o.z[k] *= inv;
            o.t[k] *= inv;
            o.qv[k] *= inv;
            o.qc[k] *= inv;
            o.qr[k] *= inv;
            o.u[k] *= inv;
            o.v[k] *= inv;
        }
        o.tskin *= inv;
        o.coszr *= inv;
    }
    out
}

/// Configuration of the data-generation run.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Fine ("GSRM") grid level run with conventional physics.
    pub fine_level: u32,
    /// Coarse-graining target level (the 30 km analogue).
    pub coarse_level: u32,
    pub nlev: usize,
    /// Physics steps recorded per simulated "day" (paper: hourly snapshots).
    pub steps_per_day: usize,
    /// Simulated days per Table-1 period.
    pub days_per_period: usize,
    /// How many of the four Table-1 regimes to run.
    pub n_periods: usize,
    /// Record every `cell_stride`-th coarse cell (1 = all; larger strides
    /// thin the dataset for quick training runs).
    pub cell_stride: usize,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            fine_level: 3,
            coarse_level: 2,
            nlev: 10,
            steps_per_day: 8,
            days_per_period: 1,
            n_periods: 2,
            cell_stride: 1,
        }
    }
}

/// Output of the generator: CNN samples (x = [U|V|T|Q|P]×nlev,
/// y = [Q1|Q2]×nlev) and MLP samples (x = [T|Q|tskin|coszr], y = [gsw, glw]).
pub struct GeneratedData {
    pub cnn: Vec<Sample>,
    pub mlp: Vec<Sample>,
    pub nlev: usize,
}

/// Run the fine model and harvest coarse-grained training samples.
pub fn generate_training_data(cfg: &DataGenConfig) -> GeneratedData {
    let coarse_mesh = HexMesh::build(cfg.coarse_level);
    let mut cnn_samples = Vec::new();
    let mut mlp_samples = Vec::new();

    for (pi, period) in TRAINING_PERIODS.iter().take(cfg.n_periods).enumerate() {
        let run_cfg = RunConfig::for_level(cfg.fine_level, cfg.nlev);
        let mut model = GristModel::<f64>::new(run_cfg);
        model.declination = period.solar_declination;
        // ENSO regime: shift the SST field by a fraction of the ONI.
        for t in model.surface.tskin.iter_mut() {
            *t += 0.5 * period.oni;
        }
        // MJO-like zonal moisture modulation.
        let nlev = cfg.nlev;
        for c in 0..model.n_cells() {
            let modu = 1.0 + 0.1 * period.mjo * model.lons[c].sin();
            for k in 0..nlev {
                let q = model.state.tracers[0].at(k, c) * modu;
                model.state.tracers[0].set(k, c, q);
            }
        }
        let map = CoarseMap::build(&model.solver.mesh, &coarse_mesh);
        // No spin-up: the sampling window starts at the initial state so the
        // dataset covers the active adjustment regime (convective rain) that
        // coupled evaluation runs traverse from the same initial-state family.

        let total_steps = cfg.steps_per_day * cfg.days_per_period;
        for step in 0..total_steps {
            model.advance(model.config.dt_phy);
            let day = pi * cfg.days_per_period + step / cfg.steps_per_day;
            let step_in_day = step % cfg.steps_per_day;
            // Inputs: coarse-grained coupling columns (the 30 km analogue
            // of the paper's coarse-grained 5 km GSRM fields).
            let fine_cols = extract_columns(&mut model.solver, &model.state, &model.surface);
            let coarse_cols = coarse_grain_columns(&map, &fine_cols);
            // Targets: the *fine-grid* physics tendencies and diagnostics of
            // the step just taken, coarse-grained — the residual method of
            // §3.2.2. This is what lets the ML suite inherit sub-coarse-grid
            // rain that physics re-run on smoothed columns would never see.
            assert!(
                matches!(model.physics, PhysicsEngine::Conventional { .. }),
                "data generation uses conventional physics"
            );
            let fine_tends = model.last_tendencies.clone();
            let fine_diags = model.last_diag.clone();
            let avg_levels = |get: &dyn Fn(usize) -> f64| {
                map.average(&(0..fine_cols.len()).map(get).collect::<Vec<f64>>())
            };
            let mut tends: Vec<grist_physics::Tendencies> = (0..map.n_coarse)
                .map(|_| grist_physics::Tendencies::zeros(nlev))
                .collect();
            for k in 0..nlev {
                let q1 = avg_levels(&|c| fine_tends[c].dt_dt[k]);
                let q2 = avg_levels(&|c| fine_tends[c].dqv_dt[k]);
                for (ci, t) in tends.iter_mut().enumerate() {
                    t.dt_dt[k] = q1[ci];
                    t.dqv_dt[k] = q2[ci];
                }
            }
            let gsw = map.average(&fine_diags.iter().map(|d| d.gsw).collect::<Vec<_>>());
            let glw = map.average(&fine_diags.iter().map(|d| d.glw).collect::<Vec<_>>());
            let pr = map.average(&fine_diags.iter().map(|d| d.precip).collect::<Vec<_>>());
            let diags: Vec<grist_physics::SurfaceDiag> = (0..map.n_coarse)
                .map(|ci| grist_physics::SurfaceDiag {
                    gsw: gsw[ci],
                    glw: glw[ci],
                    precip: pr[ci],
                    ..Default::default()
                })
                .collect();
            for (ci, col) in coarse_cols.iter().enumerate() {
                if ci % cfg.cell_stride.max(1) != 0 {
                    continue;
                }
                let mut x = Vec::with_capacity(CNN_INPUT_CHANNELS * nlev);
                x.extend(col.u.iter().map(|&v| v as f32));
                x.extend(col.v.iter().map(|&v| v as f32));
                x.extend(col.t.iter().map(|&v| v as f32));
                x.extend(col.qv.iter().map(|&v| v as f32));
                x.extend(col.p.iter().map(|&v| v as f32));
                let mut y = Vec::with_capacity(CNN_OUTPUT_CHANNELS * nlev);
                y.extend(tends[ci].dt_dt.iter().map(|&v| v as f32));
                y.extend(tends[ci].dqv_dt.iter().map(|&v| v as f32));
                cnn_samples.push(Sample {
                    x,
                    y,
                    day,
                    step: step_in_day,
                });

                let mut rx = Vec::with_capacity(2 * nlev + 2);
                rx.extend(col.t.iter().map(|&v| v as f32));
                rx.extend(col.qv.iter().map(|&v| v as f32));
                rx.push(col.tskin as f32);
                rx.push(col.coszr as f32);
                let ry = vec![
                    diags[ci].gsw as f32,
                    diags[ci].glw as f32,
                    diags[ci].precip as f32,
                ];
                mlp_samples.push(Sample {
                    x: rx,
                    y: ry,
                    day,
                    step: step_in_day,
                });
            }
        }
    }
    GeneratedData {
        cnn: cnn_samples,
        mlp: mlp_samples,
        nlev: cfg.nlev,
    }
}

/// Training report.
#[derive(Debug, Clone, Copy)]
pub struct TrainReport {
    pub cnn_train_loss: f32,
    pub cnn_test_loss: f32,
    pub cnn_test_loss_untrained: f32,
    pub mlp_test_loss: f32,
    pub mlp_test_loss_untrained: f32,
    pub train_test_ratio: f64,
}

/// Train an [`MlSuite`] on generated data (normalized-space MSE, Adam,
/// minibatches), using the paper's day-wise 7:1 split.
pub fn train_ml_suite(
    data: &GeneratedData,
    channels: usize,
    epochs: usize,
    seed: u64,
) -> (MlSuite, TrainReport) {
    let nlev = data.nlev;
    let mut suite = MlSuite::untrained(nlev, channels, seed);

    // --- normalization fit on the training split ---
    let cnn_ds = Dataset::split_by_day(data.cnn.clone(), seed);
    let mlp_ds = Dataset::split_by_day(data.mlp.clone(), seed ^ 1);
    let xs: Vec<Vec<f32>> = cnn_ds.train.iter().map(|s| s.x.clone()).collect();
    let ys: Vec<Vec<f32>> = cnn_ds.train.iter().map(|s| s.y.clone()).collect();
    let in_norm = ChannelNormalizer::fit(xs.iter(), CNN_INPUT_CHANNELS, nlev);
    let out_norm = ChannelNormalizer::fit(ys.iter(), CNN_OUTPUT_CHANNELS, nlev);
    suite.cnn.in_norm = in_norm.as_inv_pairs();
    suite.cnn.out_norm = out_norm.stats.clone();

    let rxs: Vec<Vec<f32>> = mlp_ds.train.iter().map(|s| s.x.clone()).collect();
    let rys: Vec<Vec<f32>> = mlp_ds.train.iter().map(|s| s.y.clone()).collect();
    let rin = ChannelNormalizer::fit(rxs.iter(), 2 * nlev + 2, 1);
    let rout = ChannelNormalizer::fit(rys.iter(), 3, 1);
    suite.mlp.in_norm = rin.as_inv_pairs();
    suite.mlp.out_norm = rout.stats.clone();

    // Normalized sample tensors.
    let prep = |s: &Sample, innorm: &ChannelNormalizer, outnorm: &ChannelNormalizer| {
        let mut x = s.x.clone();
        innorm.normalize(&mut x);
        let mut y = s.y.clone();
        outnorm.normalize(&mut y);
        (x, y)
    };
    let cnn_train: Vec<_> = cnn_ds
        .train
        .iter()
        .map(|s| prep(s, &in_norm, &out_norm))
        .collect();
    let cnn_test: Vec<_> = cnn_ds
        .test
        .iter()
        .map(|s| prep(s, &in_norm, &out_norm))
        .collect();
    let mlp_train: Vec<_> = mlp_ds.train.iter().map(|s| prep(s, &rin, &rout)).collect();
    let mlp_test: Vec<_> = mlp_ds.test.iter().map(|s| prep(s, &rin, &rout)).collect();

    let eval_cnn = |suite: &MlSuite, set: &[(Vec<f32>, Vec<f32>)]| -> f32 {
        let mut total = 0.0;
        let mut y = vec![0.0f32; 2 * nlev];
        for (x, t) in set {
            suite.cnn.infer(x, &mut y);
            total += grist_ml::mse_loss(&y, t).0;
        }
        total / set.len().max(1) as f32
    };
    let eval_mlp = |suite: &MlSuite, set: &[(Vec<f32>, Vec<f32>)]| -> f32 {
        let mut total = 0.0;
        for (x, t) in set {
            let y = suite.mlp.infer(x);
            total += grist_ml::mse_loss(&y, t).0;
        }
        total / set.len().max(1) as f32
    };

    let cnn_test_loss_untrained = eval_cnn(&suite, &cnn_test);
    let mlp_test_loss_untrained = eval_mlp(&suite, &mlp_test);

    // --- training loops ---
    let mut opt_cnn = Adam::new(AdamConfig {
        lr: 2e-3,
        ..Default::default()
    });
    let mut opt_mlp = Adam::new(AdamConfig {
        lr: 2e-3,
        ..Default::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
    let batch = 16;
    let mut order: Vec<usize> = (0..cnn_train.len()).collect();
    let mut cnn_train_loss = 0.0;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        cnn_train_loss = 0.0;
        for chunk in order.chunks(batch) {
            for &i in chunk {
                let (x, y) = &cnn_train[i];
                cnn_train_loss += suite.cnn.train_sample(x, y);
            }
            suite.cnn.optimizer_step(&mut opt_cnn);
        }
        cnn_train_loss /= cnn_train.len().max(1) as f32;

        for chunk in (0..mlp_train.len()).collect::<Vec<_>>().chunks(batch) {
            for &i in chunk {
                let (x, y) = &mlp_train[i];
                suite.mlp.train_sample(x, y);
            }
            suite.mlp.optimizer_step(&mut opt_mlp);
        }
    }

    let report = TrainReport {
        cnn_train_loss,
        cnn_test_loss: eval_cnn(&suite, &cnn_test),
        cnn_test_loss_untrained,
        mlp_test_loss: eval_mlp(&suite, &mlp_test),
        mlp_test_loss_untrained,
        train_test_ratio: cnn_ds.ratio(),
    };
    (suite, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_map_covers_every_coarse_cell() {
        let fine = HexMesh::build(3);
        let coarse = HexMesh::build(2);
        let map = CoarseMap::build(&fine, &coarse);
        let mut hit = vec![false; coarse.n_cells()];
        for &c in &map.fine_to_coarse {
            hit[c as usize] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "some coarse cells received no fine cells"
        );
    }

    #[test]
    fn coarse_map_assigns_nearest() {
        let fine = HexMesh::build(3);
        let coarse = HexMesh::build(2);
        let map = CoarseMap::build(&fine, &coarse);
        for f in (0..fine.n_cells()).step_by(97) {
            let assigned = map.fine_to_coarse[f] as usize;
            let d_assigned = fine.cell_xyz[f].arc_dist(coarse.cell_xyz[assigned]);
            for c in 0..coarse.n_cells() {
                assert!(
                    d_assigned <= fine.cell_xyz[f].arc_dist(coarse.cell_xyz[c]) + 1e-12,
                    "cell {f} not assigned to nearest coarse cell"
                );
            }
        }
    }

    #[test]
    fn averaging_preserves_constant_fields() {
        let fine = HexMesh::build(3);
        let coarse = HexMesh::build(2);
        let map = CoarseMap::build(&fine, &coarse);
        let vals = vec![5.5; fine.n_cells()];
        let avg = map.average(&vals);
        assert!(avg.iter().all(|&v| (v - 5.5).abs() < 1e-12));
    }

    #[test]
    fn generated_data_has_paperlike_split_and_shapes() {
        let cfg = DataGenConfig {
            fine_level: 2,
            coarse_level: 1,
            nlev: 8,
            steps_per_day: 8,
            days_per_period: 1,
            n_periods: 1,
            cell_stride: 1,
        };
        let data = generate_training_data(&cfg);
        assert!(!data.cnn.is_empty());
        assert_eq!(data.cnn.len(), data.mlp.len());
        assert_eq!(data.cnn[0].x.len(), 5 * 8);
        assert_eq!(data.cnn[0].y.len(), 2 * 8);
        assert_eq!(data.mlp[0].x.len(), 2 * 8 + 2);
        assert_eq!(data.mlp[0].y.len(), 3, "gsw, glw, precip targets");
        // Targets contain signal (radiative cooling at minimum).
        assert!(data.cnn.iter().any(|s| s.y.iter().any(|&v| v != 0.0)));
        let ds = Dataset::split_by_day(data.cnn.clone(), 3);
        assert!(!ds.test.is_empty() && !ds.train.is_empty());
    }

    #[test]
    fn training_reduces_test_loss() {
        let cfg = DataGenConfig {
            fine_level: 2,
            coarse_level: 1,
            nlev: 8,
            steps_per_day: 8,
            days_per_period: 1,
            n_periods: 2,
            cell_stride: 1,
        };
        let data = generate_training_data(&cfg);
        let (_suite, report) = train_ml_suite(&data, 8, 15, 42);
        assert!(
            report.cnn_test_loss < 0.8 * report.cnn_test_loss_untrained,
            "CNN did not learn: {} -> {}",
            report.cnn_test_loss_untrained,
            report.cnn_test_loss
        );
        assert!(
            report.mlp_test_loss < 0.5 * report.mlp_test_loss_untrained,
            "MLP did not learn: {} -> {}",
            report.mlp_test_loss_untrained,
            report.mlp_test_loss
        );
    }
}
