//! The ML-based physics suite assembled for online coupling (§3.2.3–3.2.4):
//! the CNN tendency module (Q1/Q2), the MLP radiation diagnostic module
//! (gsw/glw), and the conventional physics *diagnostic* module (surface
//! precipitation from the moisture budget) — "they together form the new
//! model physics suite".
//!
//! ## Batched inference (the §3.3.4 "unified computational pattern")
//!
//! [`MlSuite::step_columns`] packs blocks of [`MlSuite::block`] columns into
//! row-major `[B × n_in]` stage matrices and runs each block through
//! `grist_ml`'s im2col + GEMM engine — one `Substrate` dispatch item per
//! *block*, metered with `run_with_bytes` so DMA counters, the `ml` trace
//! span and the fault/degradation path all see the batched kernel. All
//! intermediate storage comes from a shared [`ScratchPool`]; after warm-up
//! the steady-state loop performs zero heap allocations (inference side —
//! the `MlOutput` assembly still allocates its `Tendencies`, exactly as the
//! per-column path always has), which
//! [`MlSuite::scratch_alloc_events`] lets tests assert.
//!
//! The batched path is **bitwise identical** to the per-column reference
//! ([`MlSuite::step_columns_per_column`]): the GEMM kernel accumulates each
//! output element in the same order as the matrix–vector loops (see
//! `grist_ml::gemm`), so equivalence tests use exact equality and the chaos
//! suite's determinism guarantees carry over unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use grist_ml::batch::{CnnScratch, MlpScratch};
use grist_ml::models::{RadiationMlp, TendencyCnn, CNN_INPUT_CHANNELS, CNN_OUTPUT_CHANNELS};
use grist_ml::{cnn_batch_flops, mlp_batch_flops, GemmVariant};
use grist_physics::column::consts::LVAP;
use grist_physics::surface::{bulk_fluxes, SurfaceConfig};
use grist_physics::{Column, SurfaceDiag, Tendencies};
use sunway_sim::{
    stage_chunks, ColumnsMut, CopyStats, DmaMode, KernelMode, LdmArena, Substrate, SunwaySpec,
};

/// Default number of columns per batched dispatch block. Sized so the
/// largest LDM-*resident* panel (an activation matrix, `ch × B·nlev` f32:
/// 240 KB for the production-like 64-channel, 30-level suite) fills but
/// does not overflow a CPE's 256 KB LDM. The 3× larger im2col panel never
/// needs to be resident — the GEMM tiling streams it in `KC`-deep slivers
/// — see DESIGN.md "Batched ML inference".
pub const DEFAULT_ML_BLOCK: usize = 32;

/// Per-block working storage: the packed stage matrices plus the network
/// scratch arenas. Lives in a [`ScratchPool`] and is reused across blocks
/// and steps.
#[derive(Debug, Default)]
struct BlockScratch {
    cnn: CnnScratch,
    mlp: MlpScratch,
    xs_cnn: Vec<f32>,
    ys_cnn: Vec<f32>,
    xs_mlp: Vec<f32>,
    ys_mlp: Vec<f32>,
    grows: u64,
}

impl BlockScratch {
    fn ensure(&mut self, b: usize, nlev: usize, n_in_mlp: usize, n_out_mlp: usize) {
        let want = b * CNN_INPUT_CHANNELS * nlev;
        if self.xs_cnn.len() < want {
            self.grows += 1;
            self.xs_cnn.resize(want, 0.0);
            self.ys_cnn.resize(b * CNN_OUTPUT_CHANNELS * nlev, 0.0);
            self.xs_mlp.resize(b * n_in_mlp, 0.0);
            self.ys_mlp.resize(b * n_out_mlp, 0.0);
        }
    }

    fn alloc_events(&self) -> u64 {
        self.grows + self.cnn.grows() + self.mlp.grows()
    }
}

/// A free-list of `BlockScratch` arenas shared (via `Arc`) by every clone
/// of a suite. Workers pop an arena per block and push it back when done;
/// one arena is created per *concurrently active* worker, after which the
/// pool is in steady state and [`Self::alloc_events`] stops moving.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<BlockScratch>>,
    created: AtomicU64,
}

impl ScratchPool {
    fn take(&self) -> BlockScratch {
        let popped = self.free.lock().unwrap().pop();
        popped.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            BlockScratch::default()
        })
    }

    fn put(&self, s: BlockScratch) {
        self.free.lock().unwrap().push(s);
    }

    /// Total allocation events: arenas created plus every buffer growth
    /// inside the pooled arenas. Constant across repeated `step_columns`
    /// calls ⇒ the batched inference loop is allocation-free. (Only
    /// meaningful between dispatches, when all arenas are back in the
    /// pool.)
    pub fn alloc_events(&self) -> u64 {
        let free = self.free.lock().unwrap();
        self.created.load(Ordering::Relaxed) + free.iter().map(|s| s.alloc_events()).sum::<u64>()
    }
}

/// The coupled ML physics suite.
#[derive(Debug, Clone)]
pub struct MlSuite {
    pub cnn: TendencyCnn,
    pub mlp: RadiationMlp,
    pub nlev: usize,
    /// Execution target for the blocked inference fan-out (§3.3.4).
    pub sub: Substrate,
    /// Surface-layer parameters for the bulk-flux diagnostic — previously
    /// hardcoded to `SurfaceConfig::default()`; now plumbed so a model
    /// configured with non-default surface physics keeps it under the ML
    /// suite too (ocean β, matching the conventional suite's ocean branch).
    pub surface: SurfaceConfig,
    /// Columns per batched dispatch block.
    pub block: usize,
    /// Shared scratch arenas for the batched engine.
    scratch: Arc<ScratchPool>,
}

/// Output of the ML suite on one column (mirrors the conventional suite's).
#[derive(Debug, Clone)]
pub struct MlOutput {
    pub tend: Tendencies,
    pub diag: SurfaceDiag,
}

impl MlSuite {
    /// An untrained suite (for architecture/performance work); training is
    /// done by `datagen::train_ml_suite`.
    pub fn untrained(nlev: usize, channels: usize, seed: u64) -> Self {
        let mut cnn = TendencyCnn::new(nlev, channels, seed);
        // Untrained output scaling: keep raw-network O(1) outputs at the
        // physical scale of small tendencies so an untrained suite perturbs
        // rather than destroys a coupled run. Training overwrites these.
        cnn.out_norm = vec![(0.0, 1e-6); 2];
        // Three diagnostic outputs: gsw, glw (§3.2.3) plus surface
        // precipitation (our diagnostic-module extension — DESIGN.md).
        let mut mlp = RadiationMlp::with_outputs(2 * nlev + 2, 3, 64, seed ^ 0x5eed);
        mlp.out_norm = vec![(200.0, 20.0), (350.0, 20.0), (1.0, 0.5)];
        MlSuite {
            cnn,
            mlp,
            nlev,
            sub: Substrate::serial(),
            surface: SurfaceConfig::default(),
            block: DEFAULT_ML_BLOCK,
            scratch: Arc::new(ScratchPool::default()),
        }
    }

    /// Build the CNN input vector `[U|V|T|Q|P] × nlev` from a column
    /// (raw physical units; normalization is the model's).
    pub fn cnn_input(&self, col: &Column) -> Vec<f32> {
        let mut x = vec![0.0f32; CNN_INPUT_CHANNELS * self.nlev];
        self.cnn_input_into(col, &mut x);
        x
    }

    /// Fill a `[5 × nlev]` slice with the CNN input — the allocation-free
    /// form the batched packer uses.
    pub fn cnn_input_into(&self, col: &Column, x: &mut [f32]) {
        let nlev = self.nlev;
        debug_assert_eq!(x.len(), CNN_INPUT_CHANNELS * nlev);
        let fields: [&[f64]; CNN_INPUT_CHANNELS] = [&col.u, &col.v, &col.t, &col.qv, &col.p];
        for (chunk, field) in x.chunks_mut(nlev).zip(fields) {
            for (d, &s) in chunk.iter_mut().zip(field) {
                *d = s as f32;
            }
        }
    }

    /// Build the radiation MLP input `[T | Q | tskin | coszr]`.
    pub fn mlp_input(&self, col: &Column) -> Vec<f32> {
        let mut x = vec![0.0f32; 2 * self.nlev + 2];
        self.mlp_input_into(col, &mut x);
        x
    }

    /// Fill a `[2·nlev + 2]` slice with the MLP input (allocation-free
    /// form).
    pub fn mlp_input_into(&self, col: &Column, x: &mut [f32]) {
        let nlev = self.nlev;
        debug_assert_eq!(x.len(), 2 * nlev + 2);
        for (d, &s) in x[..nlev].iter_mut().zip(&col.t) {
            *d = s as f32;
        }
        for (d, &s) in x[nlev..2 * nlev].iter_mut().zip(&col.qv) {
            *d = s as f32;
        }
        x[2 * nlev] = col.tskin as f32;
        x[2 * nlev + 1] = col.coszr as f32;
    }

    /// Assemble one column's [`MlOutput`] from the *denormalized* CNN
    /// profile `y [2 × nlev]` and MLP diagnostics `r [n_out]` — the shared
    /// tail of the per-column and batched paths.
    fn assemble_output(&self, col: &Column, y: &[f32], r: &[f32]) -> MlOutput {
        let nlev = self.nlev;
        let mut tend = Tendencies::zeros(nlev);
        for k in 0..nlev {
            tend.dt_dt[k] = y[k] as f64; // Q1
            tend.dqv_dt[k] = y[nlev + k] as f64; // Q2
        }
        let gsw = (r[0] as f64).max(0.0);
        let glw = (r[1] as f64).max(0.0);
        // Learned precipitation diagnostic (third MLP output); if the suite
        // was built with only the two radiation outputs, fall back to the
        // column moisture-budget closure P = E − ∫Q2 dm.
        let (shflx, lhflx) = bulk_fluxes(col, &self.surface, self.surface.beta_ocean);
        let precip = if r.len() >= 3 {
            (r[2] as f64).max(0.0)
        } else {
            let mut dq_int = 0.0;
            for k in 0..nlev {
                dq_int += tend.dqv_dt[k] * col.layer_mass(k);
            }
            (lhflx / LVAP - dq_int).max(0.0) * 86_400.0
        };
        MlOutput {
            tend,
            diag: SurfaceDiag {
                gsw,
                glw,
                precip,
                shflx,
                lhflx,
                tskin: col.tskin,
                cloud_cover: 0.0,
            },
        }
    }

    /// Run the suite on one column (matrix–vector reference path).
    pub fn step_column(&self, col: &Column) -> MlOutput {
        let nlev = self.nlev;
        // --- ML physical tendency module ---
        let mut x = self.cnn_input(col);
        self.cnn.normalize_input(&mut x);
        let mut y = vec![0.0f32; 2 * nlev];
        self.cnn.infer(&x, &mut y);
        self.cnn.denormalize_output(&mut y);

        // --- ML radiation/surface diagnostic module ---
        let mut rx = self.mlp_input(col);
        self.mlp.normalize_input(&mut rx);
        let mut r = self.mlp.infer(&rx);
        self.mlp.denormalize_output(&mut r);

        self.assemble_output(col, &y, &r)
    }

    /// Run one block of columns through the batched GEMM engine, writing
    /// each result into its slot of `out` at `lo + i`.
    fn step_block(
        &self,
        cols: &[Column],
        lo: usize,
        hi: usize,
        out: &ColumnsMut<'_, Option<MlOutput>>,
        s: &mut BlockScratch,
    ) {
        let block = &cols[lo..hi];
        let b = block.len();
        let nlev = self.nlev;
        let (n_in, n_out) = (self.mlp.n_in, self.mlp.n_out);
        s.ensure(b, nlev, n_in, n_out);

        // Pack the stage matrices (row per column), raw physical units.
        let xs_cnn = &mut s.xs_cnn[..b * CNN_INPUT_CHANNELS * nlev];
        for (i, col) in block.iter().enumerate() {
            let row = &mut xs_cnn[i * CNN_INPUT_CHANNELS * nlev..][..CNN_INPUT_CHANNELS * nlev];
            self.cnn_input_into(col, row);
        }
        let xs_mlp = &mut s.xs_mlp[..b * n_in];
        for (i, col) in block.iter().enumerate() {
            let row = &mut xs_mlp[i * n_in..][..n_in];
            self.mlp_input_into(col, row);
        }

        // Normalize in place — under DmaMode::DoubleBuffered the rows are
        // staged through LDM with the prefetch-overlap pipeline (one row
        // per chunk), the same bits the plain in-place loop produces.
        match self.sub.dma_mode() {
            DmaMode::Synchronous => {
                for row in xs_cnn.chunks_mut(CNN_INPUT_CHANNELS * nlev) {
                    self.cnn.normalize_input(row);
                }
                for row in xs_mlp.chunks_mut(n_in) {
                    self.mlp.normalize_input(row);
                }
            }
            DmaMode::DoubleBuffered => {
                let mut arena = LdmArena::new(&SunwaySpec::next_gen());
                let stats = CopyStats::default();
                let fault = self.sub.fault_plan();
                let mut degradations = 0u64;
                for (xs, row_len, net) in [
                    (&mut *xs_cnn, CNN_INPUT_CHANNELS * nlev, true),
                    (&mut *xs_mlp, n_in, false),
                ] {
                    let report = stage_chunks(
                        DmaMode::DoubleBuffered,
                        &mut arena,
                        row_len,
                        xs,
                        &stats,
                        fault.as_ref(),
                        |_, row| {
                            if net {
                                self.cnn.normalize_input(row);
                            } else {
                                self.mlp.normalize_input(row);
                            }
                        },
                    )
                    .expect("ML stage rows fit the LDM arena");
                    degradations += u64::from(report.degraded_at.is_some());
                    self.sub
                        .metrics()
                        .counter_add("fault.injected", report.injected);
                    self.sub
                        .metrics()
                        .counter_add("fault.retries", report.retries);
                }
                use std::sync::atomic::Ordering as O;
                let m = self.sub.metrics();
                m.counter_add("dma.transactions", stats.dma_transfers.load(O::Relaxed));
                m.counter_add("dma.bytes", stats.dma_bytes.load(O::Relaxed));
                m.counter_add("fault.degradations", degradations);
            }
        }

        // One im2col+GEMM pass per network for the whole block, on the
        // microkernel the substrate's KernelMode selects.
        let variant = match self.sub.kernel_mode() {
            KernelMode::ScalarReference => GemmVariant::Scalar,
            KernelMode::Simd => GemmVariant::Simd,
        };
        let ys_cnn = &mut s.ys_cnn[..b * CNN_OUTPUT_CHANNELS * nlev];
        self.cnn
            .infer_batch_with(variant, b, xs_cnn, ys_cnn, &mut s.cnn);
        let ys_mlp = &mut s.ys_mlp[..b * n_out];
        self.mlp
            .infer_batch_with(variant, b, xs_mlp, ys_mlp, &mut s.mlp);

        // Denormalize and assemble per column.
        for (i, col) in block.iter().enumerate() {
            let y = &mut ys_cnn[i * CNN_OUTPUT_CHANNELS * nlev..][..CNN_OUTPUT_CHANNELS * nlev];
            self.cnn.denormalize_output(y);
            let r = &mut ys_mlp[i * n_out..][..n_out];
            self.mlp.denormalize_output(r);
            // SAFETY: each output index is written by exactly one block.
            *unsafe { out.at(lo + i) } = Some(self.assemble_output(col, y, r));
        }
    }

    /// Run on many columns — "a simplified, unified computational pattern
    /// (primarily matrix multiplication)": blocks of [`Self::block`]
    /// columns, each lowered to im2col + GEMM, one `Substrate` dispatch
    /// item per block with the streamed bytes metered for the DMA model.
    pub fn step_columns(&self, cols: &[Column]) -> Vec<MlOutput> {
        // Attribute the inference fan-out to the "ml" trace span.
        let _span = self.sub.span("ml");
        let n = cols.len();
        let block = self.block.max(1);
        let n_blocks = n.div_ceil(block);
        // Streamed per block: CNN in/out (5+2 profiles) + MLP in/out
        // (2·nlev+2 in, 3 out ≈ +5), all f32.
        let bytes_per_block = 4 * block * (9 * self.nlev + 5);
        // Exact FLOP accounting for the roofline attribution: the sum of
        // the per-block GEMM shapes actually dispatched (`batch_flops`),
        // surfaced as the `ml.flops_batched` counter.
        let flops: u64 = (0..n_blocks)
            .map(|bi| self.batch_flops(((bi * block + block).min(n)) - bi * block))
            .sum();
        self.sub.metrics().counter_add("ml.flops_batched", flops);
        let mut out: Vec<Option<MlOutput>> = (0..n).map(|_| None).collect();
        {
            let out_view = ColumnsMut::new(&mut out, 1);
            self.sub
                .run_with_bytes("ml_physics_blocks", n_blocks, bytes_per_block, |bi| {
                    let lo = bi * block;
                    let hi = (lo + block).min(n);
                    let mut scratch = self.scratch.take();
                    self.step_block(cols, lo, hi, &out_view, &mut scratch);
                    self.scratch.put(scratch);
                });
        }
        out.into_iter()
            .map(|o| o.expect("block dispatched"))
            .collect()
    }

    /// The pre-batching reference: one dispatch item per column, each a
    /// matrix–vector inference. Kept for equivalence tests and as the
    /// "before" side of the `bench_ml` speedup measurement.
    pub fn step_columns_per_column(&self, cols: &[Column]) -> Vec<MlOutput> {
        let _span = self.sub.span("ml");
        let n = cols.len();
        // Exact FLOPs for this path: n independent matrix–vector inferences.
        self.sub
            .metrics()
            .counter_add("ml.flops_percol", n as u64 * self.flops_per_column());
        let mut out: Vec<Option<MlOutput>> = (0..n).map(|_| None).collect();
        {
            let out_cols = ColumnsMut::new(&mut out, 1);
            self.sub.run("ml_physics_columns", n, |i| {
                // SAFETY: each column index is dispatched exactly once.
                *unsafe { out_cols.at(i) } = Some(self.step_column(&cols[i]));
            });
        }
        out.into_iter()
            .map(|o| o.expect("column dispatched"))
            .collect()
    }

    /// Inference FLOPs per column (for the §4.7 comparison).
    pub fn flops_per_column(&self) -> u64 {
        self.cnn.flops() + self.mlp.flops()
    }

    /// FLOPs the batched engine issues for a block of `b` columns, summed
    /// from the exact GEMM shapes the lowering performs. Consistency:
    /// `batch_flops(b) == b · flops_per_column()`.
    pub fn batch_flops(&self, b: usize) -> u64 {
        cnn_batch_flops(&self.cnn, b) + mlp_batch_flops(&self.mlp, b)
    }

    /// Allocation events inside the batched-inference scratch arenas (see
    /// [`ScratchPool::alloc_events`]). Flat across steps ⇒ zero-alloc
    /// steady state.
    pub fn scratch_alloc_events(&self) -> u64 {
        self.scratch.alloc_events()
    }

    /// Save the trained suite (both networks + normalization) to one file —
    /// the "weight of the AI-enhanced physics suite along with its
    /// corresponding parameter files" of the paper's artifact.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.cnn.save_to(&mut f)?;
        self.mlp.save_to(&mut f)?;
        Ok(())
    }

    /// Load a suite saved with [`Self::save`]. Runtime knobs (substrate,
    /// surface config, block size) are not part of the weight file and come
    /// back as defaults.
    pub fn load(path: &std::path::Path) -> std::io::Result<MlSuite> {
        let mut f = std::fs::File::open(path)?;
        let cnn = TendencyCnn::load_from(&mut f)?;
        let mlp = RadiationMlp::load_from(&mut f)?;
        let nlev = cnn.nlev;
        Ok(MlSuite {
            cnn,
            mlp,
            nlev,
            sub: Substrate::serial(),
            surface: SurfaceConfig::default(),
            block: DEFAULT_ML_BLOCK,
            scratch: Arc::new(ScratchPool::default()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_suite_produces_finite_outputs() {
        let suite = MlSuite::untrained(30, 16, 7);
        let col = Column::reference(30);
        let out = suite.step_column(&col);
        assert!(out.tend.dt_dt.iter().all(|x| x.is_finite()));
        assert!(out.tend.dqv_dt.iter().all(|x| x.is_finite()));
        assert!(out.diag.precip >= 0.0);
        assert!(out.diag.gsw >= 0.0 && out.diag.glw >= 0.0);
    }

    #[test]
    fn input_layout_is_channel_major() {
        let suite = MlSuite::untrained(5, 8, 1);
        let mut col = Column::reference(5);
        col.u = vec![1.0; 5];
        col.v = vec![2.0; 5];
        col.t = vec![3.0; 5];
        col.qv = vec![4.0; 5];
        col.p = vec![5.0; 5];
        let x = suite.cnn_input(&col);
        assert_eq!(&x[0..5], &[1.0; 5]);
        assert_eq!(&x[5..10], &[2.0; 5]);
        assert_eq!(&x[20..25], &[5.0; 5]);
        let rx = suite.mlp_input(&col);
        assert_eq!(rx.len(), 12);
        assert_eq!(suite.mlp.n_out, 3);
        assert_eq!(rx[10], col.tskin as f32);
        assert_eq!(rx[11], col.coszr as f32);
    }

    fn varied_columns(nlev: usize, n: usize) -> Vec<Column> {
        (0..n)
            .map(|i| {
                let mut c = Column::reference(nlev);
                c.t[nlev / 2] += (i % 17) as f64 * 0.3;
                c.qv[nlev - 1] *= 1.0 + 0.01 * (i % 5) as f64;
                c
            })
            .collect()
    }

    #[test]
    fn parallel_and_serial_agree() {
        let suite = MlSuite::untrained(10, 8, 3);
        let cols = varied_columns(10, 8);
        let par = suite.step_columns(&cols);
        for (c, p) in cols.iter().zip(&par) {
            let s = suite.step_column(c);
            assert_eq!(s.tend.dt_dt, p.tend.dt_dt);
        }
    }

    #[test]
    fn batched_blocks_match_per_column_dispatch_bitwise() {
        // n chosen to exercise a full block, a partial tail block, and the
        // b=1 degenerate tail.
        let mut suite = MlSuite::untrained(9, 8, 11);
        suite.block = 4;
        for n in [1usize, 3, 4, 5, 9] {
            let cols = varied_columns(9, n);
            let batched = suite.step_columns(&cols);
            let reference = suite.step_columns_per_column(&cols);
            for (a, b) in batched.iter().zip(&reference) {
                assert_eq!(a.tend.dt_dt, b.tend.dt_dt);
                assert_eq!(a.tend.dqv_dt, b.tend.dqv_dt);
                assert_eq!(a.diag.gsw, b.diag.gsw);
                assert_eq!(a.diag.glw, b.diag.glw);
                assert_eq!(a.diag.precip, b.diag.precip);
                assert_eq!(a.diag.shflx, b.diag.shflx);
                assert_eq!(a.diag.lhflx, b.diag.lhflx);
            }
        }
    }

    #[test]
    fn kernel_and_dma_modes_are_bitwise_equivalent() {
        let mut suite = MlSuite::untrained(9, 8, 13);
        suite.block = 4;
        let cols = varied_columns(9, 11);
        let reference = {
            suite.sub.set_kernel_mode(KernelMode::ScalarReference);
            suite.sub.set_dma_mode(DmaMode::Synchronous);
            suite.step_columns(&cols)
        };
        for kernel in [KernelMode::ScalarReference, KernelMode::Simd] {
            for dma in [DmaMode::Synchronous, DmaMode::DoubleBuffered] {
                suite.sub.set_kernel_mode(kernel);
                suite.sub.set_dma_mode(dma);
                let got = suite.step_columns(&cols);
                for (a, b) in got.iter().zip(&reference) {
                    assert_eq!(a.tend.dt_dt, b.tend.dt_dt, "{kernel:?}/{dma:?}");
                    assert_eq!(a.tend.dqv_dt, b.tend.dqv_dt, "{kernel:?}/{dma:?}");
                    assert_eq!(a.diag.gsw, b.diag.gsw, "{kernel:?}/{dma:?}");
                    assert_eq!(a.diag.glw, b.diag.glw, "{kernel:?}/{dma:?}");
                    assert_eq!(a.diag.precip, b.diag.precip, "{kernel:?}/{dma:?}");
                }
            }
        }
    }

    #[test]
    fn double_buffered_staging_meters_dma_counters() {
        let mut suite = MlSuite::untrained(8, 8, 3);
        suite.block = 4;
        let cols = varied_columns(8, 8);
        let base = suite.sub.metrics().counter("dma.transactions");
        suite.sub.set_dma_mode(DmaMode::DoubleBuffered);
        suite.step_columns(&cols);
        let staged = suite.sub.metrics().counter("dma.transactions") - base;
        // 8 columns in 2 blocks: each block stages 4 CNN rows + 4 MLP rows,
        // one get + one put per row.
        assert_eq!(staged, 2 * (4 + 4) * 2);
    }

    #[test]
    fn batched_steady_state_is_allocation_free() {
        let mut suite = MlSuite::untrained(8, 8, 5);
        suite.block = 4;
        let cols = varied_columns(8, 11);
        suite.step_columns(&cols); // warm-up grows the arenas
        let warm = suite.scratch_alloc_events();
        assert!(warm >= 1);
        for _ in 0..5 {
            suite.step_columns(&cols);
        }
        assert_eq!(
            suite.scratch_alloc_events(),
            warm,
            "batched inference allocated in steady state"
        );
    }

    #[test]
    fn configured_surface_parameters_reach_bulk_fluxes() {
        // The old code hardcoded SurfaceConfig::default() here; pin that
        // the configured parameters now flow through both paths.
        let mut suite = MlSuite::untrained(6, 4, 2);
        let col = Column::reference(6);
        let base = suite.step_column(&col);
        suite.surface.ch *= 2.0;
        let out = suite.step_column(&col);
        let (sh, lh) = bulk_fluxes(&col, &suite.surface, suite.surface.beta_ocean);
        assert_eq!(out.diag.shflx, sh);
        assert_eq!(out.diag.lhflx, lh);
        assert!(
            (out.diag.shflx - 2.0 * base.diag.shflx).abs() < 1e-9,
            "bulk SH flux is linear in ch: {} vs 2×{}",
            out.diag.shflx,
            base.diag.shflx
        );
        let batched = suite.step_columns(std::slice::from_ref(&col));
        assert_eq!(batched[0].diag.shflx, sh);
        assert_eq!(batched[0].diag.lhflx, lh);
    }

    #[test]
    fn learned_precip_diagnostic_is_used_and_clamped() {
        // Pin the MLP's third output via a zero-std out-norm and check the
        // diagnostic path (and its non-negativity clamp).
        let mut suite = MlSuite::untrained(4, 4, 9);
        suite.mlp.out_norm = vec![(250.0, 0.0), (340.0, 0.0), (7.5, 0.0)];
        let col = Column::reference(4);
        let out = suite.step_column(&col);
        assert!(
            (out.diag.precip - 7.5).abs() < 1e-6,
            "precip {}",
            out.diag.precip
        );
        suite.mlp.out_norm[2] = (-3.0, 0.0);
        let out = suite.step_column(&col);
        assert_eq!(out.diag.precip, 0.0, "negative prediction must clamp");
    }

    #[test]
    fn two_output_suite_falls_back_to_budget_closure() {
        use grist_ml::models::RadiationMlp;
        let mut suite = MlSuite::untrained(4, 4, 9);
        suite.mlp = RadiationMlp::new(2 * 4 + 2, 8, 3); // gsw/glw only
        suite.cnn.out_norm = vec![(0.0, 0.0); 2];
        suite.cnn.out_norm[1] = (-1e-7, 0.0); // uniform drying Q2
        let mut col = Column::reference(4);
        col.tskin = 200.0; // suppress evaporation
        let out = suite.step_column(&col);
        let expected = 1e-7 * (0..4).map(|k| col.layer_mass(k)).sum::<f64>() * 86_400.0;
        assert!(
            (out.diag.precip - expected).abs() < 0.05 * expected,
            "precip {} vs expected {expected}",
            out.diag.precip
        );
        // The budget closure must survive batching too.
        let batched = suite.step_columns(std::slice::from_ref(&col));
        assert_eq!(batched[0].diag.precip, out.diag.precip);
    }

    #[test]
    fn suite_save_load_roundtrips_predictions() {
        let suite = MlSuite::untrained(6, 8, 31);
        let dir = std::env::temp_dir().join(format!("grist-mlsuite-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.gml");
        suite.save(&path).unwrap();
        let back = MlSuite::load(&path).unwrap();
        let col = Column::reference(6);
        let a = suite.step_column(&col);
        let b = back.step_column(&col);
        assert_eq!(a.tend.dt_dt, b.tend.dt_dt);
        assert_eq!(a.diag.gsw, b.diag.gsw);
        assert_eq!(a.diag.precip, b.diag.precip);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flops_count_covers_both_modules() {
        let suite = MlSuite::untrained(30, 128, 1);
        assert!(suite.flops_per_column() > suite.cnn.flops());
        assert!(suite.flops_per_column() > 1_000_000);
    }

    #[test]
    fn batch_flops_match_gemm_shapes_exactly() {
        let suite = MlSuite::untrained(16, 64, 4);
        for b in [1u64, 3, 32, 33, 64] {
            assert_eq!(
                suite.batch_flops(b as usize),
                b * suite.flops_per_column(),
                "batched GEMM op count must be exactly b × per-column FLOPs"
            );
        }
    }
}
