//! The ML-based physics suite assembled for online coupling (§3.2.3–3.2.4):
//! the CNN tendency module (Q1/Q2), the MLP radiation diagnostic module
//! (gsw/glw), and the conventional physics *diagnostic* module (surface
//! precipitation from the moisture budget) — "they together form the new
//! model physics suite".

use grist_ml::models::{RadiationMlp, TendencyCnn, CNN_INPUT_CHANNELS};
use grist_physics::column::consts::LVAP;
use grist_physics::surface::{bulk_fluxes, SurfaceConfig};
use grist_physics::{Column, SurfaceDiag, Tendencies};
use sunway_sim::{ColumnsMut, Substrate};

/// The coupled ML physics suite.
#[derive(Debug, Clone)]
pub struct MlSuite {
    pub cnn: TendencyCnn,
    pub mlp: RadiationMlp,
    pub nlev: usize,
    /// Execution target for the per-column inference fan-out (§3.3.4).
    pub sub: Substrate,
}

/// Output of the ML suite on one column (mirrors the conventional suite's).
#[derive(Debug, Clone)]
pub struct MlOutput {
    pub tend: Tendencies,
    pub diag: SurfaceDiag,
}

impl MlSuite {
    /// An untrained suite (for architecture/performance work); training is
    /// done by `datagen::train_ml_suite`.
    pub fn untrained(nlev: usize, channels: usize, seed: u64) -> Self {
        let mut cnn = TendencyCnn::new(nlev, channels, seed);
        // Untrained output scaling: keep raw-network O(1) outputs at the
        // physical scale of small tendencies so an untrained suite perturbs
        // rather than destroys a coupled run. Training overwrites these.
        cnn.out_norm = vec![(0.0, 1e-6); 2];
        // Three diagnostic outputs: gsw, glw (§3.2.3) plus surface
        // precipitation (our diagnostic-module extension — DESIGN.md).
        let mut mlp = RadiationMlp::with_outputs(2 * nlev + 2, 3, 64, seed ^ 0x5eed);
        mlp.out_norm = vec![(200.0, 20.0), (350.0, 20.0), (1.0, 0.5)];
        MlSuite {
            cnn,
            mlp,
            nlev,
            sub: Substrate::serial(),
        }
    }

    /// Build the CNN input vector `[U|V|T|Q|P] × nlev` from a column
    /// (raw physical units; normalization is the model's).
    pub fn cnn_input(&self, col: &Column) -> Vec<f32> {
        let nlev = self.nlev;
        let mut x = Vec::with_capacity(CNN_INPUT_CHANNELS * nlev);
        x.extend(col.u.iter().map(|&v| v as f32));
        x.extend(col.v.iter().map(|&v| v as f32));
        x.extend(col.t.iter().map(|&v| v as f32));
        x.extend(col.qv.iter().map(|&v| v as f32));
        x.extend(col.p.iter().map(|&v| v as f32));
        x
    }

    /// Build the radiation MLP input `[T | Q | tskin | coszr]`.
    pub fn mlp_input(&self, col: &Column) -> Vec<f32> {
        let mut x = Vec::with_capacity(2 * self.nlev + 2);
        x.extend(col.t.iter().map(|&v| v as f32));
        x.extend(col.qv.iter().map(|&v| v as f32));
        x.push(col.tskin as f32);
        x.push(col.coszr as f32);
        x
    }

    /// Run the suite on one column.
    pub fn step_column(&self, col: &Column) -> MlOutput {
        let nlev = self.nlev;
        // --- ML physical tendency module ---
        let mut x = self.cnn_input(col);
        self.cnn.normalize_input(&mut x);
        let mut y = vec![0.0f32; 2 * nlev];
        self.cnn.infer(&x, &mut y);
        self.cnn.denormalize_output(&mut y);
        let mut tend = Tendencies::zeros(nlev);
        for k in 0..nlev {
            tend.dt_dt[k] = y[k] as f64; // Q1
            tend.dqv_dt[k] = y[nlev + k] as f64; // Q2
        }

        // --- ML radiation/surface diagnostic module ---
        let mut rx = self.mlp_input(col);
        self.mlp.normalize_input(&mut rx);
        let mut r = self.mlp.infer(&rx);
        self.mlp.denormalize_output(&mut r);
        let gsw = (r[0] as f64).max(0.0);
        let glw = (r[1] as f64).max(0.0);
        // Learned precipitation diagnostic (third MLP output); if the suite
        // was built with only the two radiation outputs, fall back to the
        // column moisture-budget closure P = E − ∫Q2 dm.
        let (shflx, lhflx) = bulk_fluxes(col, &SurfaceConfig::default(), 1.0);
        let precip = if r.len() >= 3 {
            (r[2] as f64).max(0.0)
        } else {
            let mut dq_int = 0.0;
            for k in 0..nlev {
                dq_int += tend.dqv_dt[k] * col.layer_mass(k);
            }
            (lhflx / LVAP - dq_int).max(0.0) * 86_400.0
        };

        MlOutput {
            tend,
            diag: SurfaceDiag {
                gsw,
                glw,
                precip,
                shflx,
                lhflx,
                tskin: col.tskin,
                cloud_cover: 0.0,
            },
        }
    }

    /// Run on many columns in parallel — "a simplified, unified computational
    /// pattern (primarily matrix multiplication)".
    pub fn step_columns(&self, cols: &[Column]) -> Vec<MlOutput> {
        // Attribute the inference fan-out to the "ml" trace span.
        let _span = self.sub.span("ml");
        let n = cols.len();
        let mut out: Vec<Option<MlOutput>> = (0..n).map(|_| None).collect();
        {
            let out_cols = ColumnsMut::new(&mut out, 1);
            self.sub.run("ml_physics_columns", n, |i| {
                // SAFETY: each column index is dispatched exactly once.
                *unsafe { out_cols.at(i) } = Some(self.step_column(&cols[i]));
            });
        }
        out.into_iter()
            .map(|o| o.expect("column dispatched"))
            .collect()
    }

    /// Inference FLOPs per column (for the §4.7 comparison).
    pub fn flops_per_column(&self) -> u64 {
        self.cnn.flops() + self.mlp.flops()
    }

    /// Save the trained suite (both networks + normalization) to one file —
    /// the "weight of the AI-enhanced physics suite along with its
    /// corresponding parameter files" of the paper's artifact.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.cnn.save_to(&mut f)?;
        self.mlp.save_to(&mut f)?;
        Ok(())
    }

    /// Load a suite saved with [`Self::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<MlSuite> {
        let mut f = std::fs::File::open(path)?;
        let cnn = TendencyCnn::load_from(&mut f)?;
        let mlp = RadiationMlp::load_from(&mut f)?;
        let nlev = cnn.nlev;
        Ok(MlSuite {
            cnn,
            mlp,
            nlev,
            sub: Substrate::serial(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_suite_produces_finite_outputs() {
        let suite = MlSuite::untrained(30, 16, 7);
        let col = Column::reference(30);
        let out = suite.step_column(&col);
        assert!(out.tend.dt_dt.iter().all(|x| x.is_finite()));
        assert!(out.tend.dqv_dt.iter().all(|x| x.is_finite()));
        assert!(out.diag.precip >= 0.0);
        assert!(out.diag.gsw >= 0.0 && out.diag.glw >= 0.0);
    }

    #[test]
    fn input_layout_is_channel_major() {
        let suite = MlSuite::untrained(5, 8, 1);
        let mut col = Column::reference(5);
        col.u = vec![1.0; 5];
        col.v = vec![2.0; 5];
        col.t = vec![3.0; 5];
        col.qv = vec![4.0; 5];
        col.p = vec![5.0; 5];
        let x = suite.cnn_input(&col);
        assert_eq!(&x[0..5], &[1.0; 5]);
        assert_eq!(&x[5..10], &[2.0; 5]);
        assert_eq!(&x[20..25], &[5.0; 5]);
        let rx = suite.mlp_input(&col);
        assert_eq!(rx.len(), 12);
        assert_eq!(suite.mlp.n_out, 3);
        assert_eq!(rx[10], col.tskin as f32);
        assert_eq!(rx[11], col.coszr as f32);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let suite = MlSuite::untrained(10, 8, 3);
        let cols: Vec<Column> = (0..8)
            .map(|i| {
                let mut c = Column::reference(10);
                c.t[5] += i as f64;
                c
            })
            .collect();
        let par = suite.step_columns(&cols);
        for (c, p) in cols.iter().zip(&par) {
            let s = suite.step_column(c);
            assert_eq!(s.tend.dt_dt, p.tend.dt_dt);
        }
    }

    #[test]
    fn learned_precip_diagnostic_is_used_and_clamped() {
        // Pin the MLP's third output via a zero-std out-norm and check the
        // diagnostic path (and its non-negativity clamp).
        let mut suite = MlSuite::untrained(4, 4, 9);
        suite.mlp.out_norm = vec![(250.0, 0.0), (340.0, 0.0), (7.5, 0.0)];
        let col = Column::reference(4);
        let out = suite.step_column(&col);
        assert!(
            (out.diag.precip - 7.5).abs() < 1e-6,
            "precip {}",
            out.diag.precip
        );
        suite.mlp.out_norm[2] = (-3.0, 0.0);
        let out = suite.step_column(&col);
        assert_eq!(out.diag.precip, 0.0, "negative prediction must clamp");
    }

    #[test]
    fn two_output_suite_falls_back_to_budget_closure() {
        use grist_ml::models::RadiationMlp;
        let mut suite = MlSuite::untrained(4, 4, 9);
        suite.mlp = RadiationMlp::new(2 * 4 + 2, 8, 3); // gsw/glw only
        suite.cnn.out_norm = vec![(0.0, 0.0); 2];
        suite.cnn.out_norm[1] = (-1e-7, 0.0); // uniform drying Q2
        let mut col = Column::reference(4);
        col.tskin = 200.0; // suppress evaporation
        let out = suite.step_column(&col);
        let expected = 1e-7 * (0..4).map(|k| col.layer_mass(k)).sum::<f64>() * 86_400.0;
        assert!(
            (out.diag.precip - expected).abs() < 0.05 * expected,
            "precip {} vs expected {expected}",
            out.diag.precip
        );
    }

    #[test]
    fn suite_save_load_roundtrips_predictions() {
        let suite = MlSuite::untrained(6, 8, 31);
        let dir = std::env::temp_dir().join(format!("grist-mlsuite-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.gml");
        suite.save(&path).unwrap();
        let back = MlSuite::load(&path).unwrap();
        let col = Column::reference(6);
        let a = suite.step_column(&col);
        let b = back.step_column(&col);
        assert_eq!(a.tend.dt_dt, b.tend.dt_dt);
        assert_eq!(a.diag.gsw, b.diag.gsw);
        assert_eq!(a.diag.precip, b.diag.precip);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flops_count_covers_both_modules() {
        let suite = MlSuite::untrained(30, 128, 1);
        assert!(suite.flops_per_column() > suite.cnn.flops());
        assert!(suite.flops_per_column() > 1_000_000);
    }
}
