//! Evaluation diagnostics: area-weighted spatial correlation (Fig. 7's
//! metric), lat–lon binning of cell fields (the rainfall maps of Figs. 7–8),
//! and the §3.4.1 mixed-precision acceptance gate.

use crate::config::RunConfig;
use crate::model::GristModel;
use grist_dycore::{relative_l2_error, PrecisionMode};
use grist_mesh::HexMesh;

/// Area-weighted Pearson correlation of two cell fields — the "spatial
/// correlation coefficient" of Fig. 7.
pub fn spatial_correlation(mesh: &HexMesh, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), mesh.n_cells());
    assert_eq!(b.len(), mesh.n_cells());
    let w: &[f64] = &mesh.cell_area;
    let wsum: f64 = w.iter().sum();
    let mean = |x: &[f64]| -> f64 { x.iter().zip(w).map(|(v, ww)| v * ww).sum::<f64>() / wsum };
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        let (da, db) = (a[i] - ma, b[i] - mb);
        cov += w[i] * da * db;
        va += w[i] * da * da;
        vb += w[i] * db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Bin a cell field onto an `nlat × nlon` lat–lon grid (area-weighted cell
/// averages; empty bins get the nearest-cell value).
pub fn bin_latlon(mesh: &HexMesh, field: &[f64], nlat: usize, nlon: usize) -> Vec<Vec<f64>> {
    let mut sum = vec![vec![0.0; nlon]; nlat];
    let mut wgt = vec![vec![0.0; nlon]; nlat];
    for c in 0..mesh.n_cells() {
        let p = mesh.cell_xyz[c];
        let i = (((p.lat() / std::f64::consts::PI + 0.5) * nlat as f64) as usize).min(nlat - 1);
        let j =
            (((p.lon() / std::f64::consts::PI + 1.0) / 2.0 * nlon as f64) as usize).min(nlon - 1);
        sum[i][j] += field[c] * mesh.cell_area[c];
        wgt[i][j] += mesh.cell_area[c];
    }
    for i in 0..nlat {
        for j in 0..nlon {
            if wgt[i][j] > 0.0 {
                sum[i][j] /= wgt[i][j];
            }
        }
    }
    sum
}

/// Result of the §3.4.1 mixed-precision gate.
#[derive(Debug, Clone, Copy)]
pub struct PrecisionGate {
    /// Relative L2 deviation of surface pressure vs the f64 gold run.
    pub ps_error: f64,
    /// Relative L2 deviation of relative vorticity.
    pub vor_error: f64,
    /// The 5% acceptance threshold.
    pub threshold: f64,
}

impl PrecisionGate {
    pub fn passes(&self) -> bool {
        self.ps_error < self.threshold && self.vor_error < self.threshold
    }
}

/// Run the same configuration in f64 (gold) and f32 (the MIX working
/// precision), integrating `sim_seconds`, and evaluate the gate. `seed_case`
/// perturbs the initial state (0 = rest + moisture only).
pub fn precision_gate(
    config: &RunConfig,
    sim_seconds: f64,
    perturb: impl Fn(&mut GristModel<f64>) + Copy,
) -> PrecisionGate {
    let gold_cfg = config.clone().with_precision(PrecisionMode::Double);
    let mut gold = GristModel::<f64>::new(gold_cfg.clone());
    perturb(&mut gold);

    let mut mix = GristModel::<f32>::new(gold_cfg);
    // Mirror the perturbed initial state into the f32 run
    // (initialization stays double precision per §3.4.3, cast once).
    mix.state = gold.state.cast::<f32>();
    mix.surface = gold.surface.clone();

    gold.advance(sim_seconds);
    mix.advance(sim_seconds);

    let ps_error = relative_l2_error(&mix.surface_pressure(), &gold.surface_pressure());
    let vor_g = gold.solver.vorticity_diag(&gold.state);
    let vor_m = mix.solver.vorticity_diag(&mix.state);
    let vor_error = relative_l2_error(&vor_m, &vor_g);
    PrecisionGate {
        ps_error,
        vor_error,
        threshold: grist_dycore::MIXED_PRECISION_ERROR_THRESHOLD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_of_identical_fields_is_one() {
        let mesh = HexMesh::build(2);
        let f: Vec<f64> = (0..mesh.n_cells()).map(|c| mesh.cell_xyz[c].z).collect();
        assert!((spatial_correlation(&mesh, &f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_negated_field_is_minus_one() {
        let mesh = HexMesh::build(2);
        let f: Vec<f64> = (0..mesh.n_cells()).map(|c| mesh.cell_xyz[c].z).collect();
        let g: Vec<f64> = f.iter().map(|x| -x + 3.0).collect();
        assert!((spatial_correlation(&mesh, &f, &g) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_independent_patterns_is_small() {
        let mesh = HexMesh::build(3);
        let f: Vec<f64> = (0..mesh.n_cells()).map(|c| mesh.cell_xyz[c].z).collect();
        let g: Vec<f64> = (0..mesh.n_cells())
            .map(|c| (mesh.cell_xyz[c].lon() * 5.0).sin())
            .collect();
        assert!(spatial_correlation(&mesh, &f, &g).abs() < 0.2);
    }

    #[test]
    fn latlon_binning_preserves_global_mean() {
        let mesh = HexMesh::build(3);
        let f: Vec<f64> = (0..mesh.n_cells())
            .map(|c| 2.0 + mesh.cell_xyz[c].z)
            .collect();
        let grid = bin_latlon(&mesh, &f, 18, 36);
        // Flat average of bins should approximate the (area-weighted) mean.
        let filled: Vec<f64> = grid
            .iter()
            .flatten()
            .copied()
            .filter(|&x| x != 0.0)
            .collect();
        let bin_mean: f64 = filled.iter().sum::<f64>() / filled.len() as f64;
        assert!((bin_mean - 2.0).abs() < 0.15, "bin mean {bin_mean}");
    }

    #[test]
    fn constant_field_has_zero_variance_correlation_guard() {
        let mesh = HexMesh::build(2);
        let f = vec![1.0; mesh.n_cells()];
        let g: Vec<f64> = (0..mesh.n_cells()).map(|c| mesh.cell_xyz[c].z).collect();
        assert_eq!(spatial_correlation(&mesh, &f, &g), 0.0);
    }
}
