//! Additional shallow-water validation cases from the Williamson et al.
//! (1992) suite — the standard battery every C-grid dycore (GRIST included,
//! cf. Zhang et al. 2019) is exercised on:
//!
//! * **TC5** — zonal flow over an isolated mountain (topographic forcing,
//!   conservation under unsteady flow);
//! * **TC6** — the wavenumber-4 Rossby–Haurwitz wave (a nearly-steadily
//!   rotating global pattern; excellent nonlinear-advection stress test).

use crate::constants::GRAVITY;
use crate::field::Field2;
use crate::real::Real;
use crate::swe::{SweSolver, SweState};
use grist_mesh::{HexMesh, Vec3, EARTH_OMEGA, EARTH_RADIUS_M};

/// Williamson TC5: solid-body zonal flow (`u0 = 20 m/s`, `gh0 = 5960·g`)
/// impinging on a conical mountain of height 2000 m centred at
/// (30°N, 90°W). Returns the initial state; the mountain must be installed
/// with [`install_tc5_mountain`].
pub fn williamson_tc5<R: Real>(mesh: &HexMesh) -> SweState<R> {
    let u0 = 20.0;
    let h0 = 5960.0;
    let h = Field2::from_fn(1, mesh.n_cells(), |_, c| {
        let sl = mesh.cell_xyz[c].lat().sin();
        R::from_f64(h0 - (EARTH_RADIUS_M * EARTH_OMEGA * u0 + 0.5 * u0 * u0) * sl * sl / GRAVITY)
    });
    let u = Field2::from_fn(1, mesh.n_edges(), |_, e| {
        let m = mesh.edge_mid[e];
        let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * u0;
        R::from_f64(v.dot(mesh.edge_normal[e]))
    });
    SweState { h, u }
}

/// Install the TC5 conical mountain into the solver's topography and remove
/// it from the fluid depth so the free surface stays smooth initially.
pub fn install_tc5_mountain<R: Real>(solver: &mut SweSolver<R>, state: &mut SweState<R>) {
    let hs0 = 2000.0;
    let rr = std::f64::consts::PI / 9.0; // mountain radius
    let center = {
        let (lat, lon) = (std::f64::consts::PI / 6.0, -std::f64::consts::PI / 2.0);
        Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin())
    };
    for c in 0..solver.mesh.n_cells() {
        let r = solver.mesh.cell_xyz[c].arc_dist(center).min(rr);
        let hs = hs0 * (1.0 - r / rr);
        solver.topo.set(0, c, R::from_f64(hs));
        let h = state.h.at(0, c);
        state.h.set(0, c, h - R::from_f64(hs));
    }
}

/// Williamson TC6: the wavenumber-4 Rossby–Haurwitz wave.
///
/// `ψ = −a²ω sinφ + a²K cos⁴φ sinφ cos(4λ)` with the standard
/// `ω = K = 7.848e-6 s⁻¹`, `h` from the balanced analytic height field.
pub fn williamson_tc6<R: Real>(mesh: &HexMesh) -> SweState<R> {
    let omega = 7.848e-6;
    let k = 7.848e-6;
    let r_wave = 4.0;
    let a = EARTH_RADIUS_M;
    let h0 = 8000.0;

    // Velocity from the analytic stream function (Williamson et al. eq. 131).
    let vel = |p: Vec3| -> Vec3 {
        let phi = p.lat();
        let lam = p.lon();
        let (cphi, sphi) = (phi.cos(), phi.sin());
        let u_zonal = a * omega * cphi
            + a * k
                * cphi.powf(r_wave - 1.0)
                * (r_wave * sphi * sphi - cphi * cphi)
                * (r_wave * lam).cos();
        let v_merid = -a * k * r_wave * cphi.powf(r_wave - 1.0) * sphi * (r_wave * lam).sin();
        p.east() * u_zonal + p.north() * v_merid
    };

    // Balanced height (Williamson et al. eqs. 136–138).
    let height = |p: Vec3| -> f64 {
        let phi = p.lat();
        let lam = p.lon();
        let c2 = phi.cos() * phi.cos();
        let r = r_wave;
        let big_a = 0.5 * omega * (2.0 * EARTH_OMEGA + omega) * c2
            + 0.25
                * k
                * k
                * c2.powf(r)
                * ((r + 1.0) * c2 + (2.0 * r * r - r - 2.0) - 2.0 * r * r / c2.max(1e-12));
        let big_b = (2.0 * (EARTH_OMEGA + omega) * k) / ((r + 1.0) * (r + 2.0))
            * c2.powf(r / 2.0)
            * ((r * r + 2.0 * r + 2.0) - (r + 1.0) * (r + 1.0) * c2);
        let big_c = 0.25 * k * k * c2.powf(r) * ((r + 1.0) * c2 - (r + 2.0));
        h0 + a * a / GRAVITY * (big_a + big_b * (r * lam).cos() + big_c * (2.0 * r * lam).cos())
    };

    let h = Field2::from_fn(1, mesh.n_cells(), |_, c| {
        R::from_f64(height(mesh.cell_xyz[c]))
    });
    let u = Field2::from_fn(1, mesh.n_edges(), |_, e| {
        R::from_f64(vel(mesh.edge_mid[e]).dot(mesh.edge_normal[e]))
    });
    SweState { h, u }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swe::tc2_height_error;

    #[test]
    fn tc5_conserves_mass_and_stays_stable_over_the_mountain() {
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc5::<f64>(&solver.mesh);
        install_tc5_mountain(&mut solver, &mut state);
        let m0 = solver.total_mass(&state);
        let dt = 300.0;
        for _ in 0..(12.0 * 3600.0 / dt) as usize {
            solver.step_rk3(&mut state, dt);
        }
        let m1 = solver.total_mass(&state);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
        assert!(state.h.as_slice().iter().all(|&h| h.is_finite() && h > 0.0));
        let umax = state
            .u
            .as_slice()
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(umax < 120.0, "TC5 blew up: {umax} m/s");
    }

    #[test]
    fn tc5_mountain_excites_a_wave_train() {
        // After half a day the flow must depart from zonal symmetry: the
        // meridional velocity (absent initially up to discretization error)
        // grows by an order of magnitude.
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc5::<f64>(&solver.mesh);
        install_tc5_mountain(&mut solver, &mut state);
        let merid_energy = |s: &SweState<f64>, solver: &SweSolver<f64>| -> f64 {
            // meridional component ≈ normal velocity on edges whose normal
            // points mostly north-south
            let mut e = 0.0;
            for i in 0..solver.mesh.n_edges() {
                let n = solver.mesh.edge_normal[i];
                let north = solver.mesh.edge_mid[i].north();
                let w = n.dot(north).abs();
                if w > 0.8 {
                    e += s.u.at(0, i) * s.u.at(0, i);
                }
            }
            e
        };
        let e0 = merid_energy(&state, &solver);
        for _ in 0..(12.0 * 3600.0 / 300.0) as usize {
            solver.step_rk3(&mut state, 300.0);
        }
        let e1 = merid_energy(&state, &solver);
        assert!(e1 > 1.02 * e0, "no mountain wave response: {e0} -> {e1}");
    }

    #[test]
    fn tc6_initial_field_is_earthlike() {
        let mesh = HexMesh::build(4);
        let state = williamson_tc6::<f64>(&mesh);
        // Height between ~7.5 and ~10.7 km (standard for RH wave).
        let hmin = state.h.min_value();
        let hmax = state.h.max_value();
        assert!(hmin > 7000.0 && hmax < 11_500.0, "h range [{hmin}, {hmax}]");
        // Winds bounded by ~110 m/s.
        let umax = state
            .u
            .as_slice()
            .iter()
            .fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!((20.0..130.0).contains(&umax), "umax {umax}");
    }

    #[test]
    fn tc6_wavenumber_four_pattern_present() {
        let mesh = HexMesh::build(4);
        let state = williamson_tc6::<f64>(&mesh);
        // Project h along the equator onto cos(4λ): strong signal expected.
        let mut c4 = 0.0;
        let mut c3 = 0.0;
        let mut norm = 0.0;
        for c in 0..mesh.n_cells() {
            let p = mesh.cell_xyz[c];
            if p.lat().abs() < 0.2 {
                let h = state.h.at(0, c);
                c4 += h * (4.0 * p.lon()).cos();
                c3 += h * (3.0 * p.lon()).cos();
                norm += h.abs();
            }
        }
        assert!(
            c4.abs() > 5.0 * c3.abs(),
            "wavenumber-4 not dominant: c4 {c4}, c3 {c3}"
        );
        assert!(norm > 0.0);
    }

    #[test]
    fn tc6_integrates_one_day_with_bounded_height_drift() {
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let init = williamson_tc6::<f64>(&solver.mesh);
        let mut state = init.clone();
        let dt = 200.0;
        for _ in 0..(86_400.0 / dt) as usize {
            solver.step_rk3(&mut state, dt);
        }
        // The RH wave rotates slowly (~90°/11 days for wavenumber 4): after
        // one day the normalized height difference from t=0 stays modest.
        let err = tc2_height_error(&solver.mesh, &state, &init);
        assert!(err < 0.05, "TC6 height deviation after 1 day: {err}");
        let e0 = solver.total_energy(&init);
        let e1 = solver.total_energy(&state);
        assert!(
            ((e1 - e0) / e0).abs() < 5e-3,
            "TC6 energy drift {}",
            (e1 - e0) / e0
        );
    }

    #[test]
    fn tc5_f32_stays_under_the_mixed_precision_gate() {
        let mesh = HexMesh::build(3);
        let mut s64 = SweSolver::<f64>::new(mesh.clone());
        let mut st64 = williamson_tc5::<f64>(&s64.mesh);
        install_tc5_mountain(&mut s64, &mut st64);
        let mut s32 = SweSolver::<f32>::new(mesh);
        let mut st32 = SweState::<f32> {
            h: st64.h.cast(),
            u: st64.u.cast(),
        };
        s32.topo = s64.topo.cast();
        for _ in 0..60 {
            s64.step_rk3(&mut st64, 300.0);
            s32.step_rk3(&mut st32, 300.0);
        }
        let err = crate::real::relative_l2_error(&st32.h.to_f64_vec(), &st64.h.to_f64_vec());
        assert!(
            err < crate::real::MIXED_PRECISION_ERROR_THRESHOLD,
            "f32 TC5 deviation {err}"
        );
    }
}
