//! Vertical discretization: the dry-mass (hydrostatic-pressure) coordinate of
//! GRIST [Zhang et al. 2020] in its simplified sigma form, plus the Thomas
//! tridiagonal solver used by the vertically-implicit half of the HEVI
//! integrator and by the columnar physics (PBL diffusion).
//!
//! Layers are indexed top-down: `k = 0` is the top layer, `k = nlev-1`
//! touches the surface. Interfaces carry `nlev + 1` entries with interface
//! `i` above layer `i`.

use crate::constants::P_TOP;
use crate::real::Real;

/// Sigma-type dry-mass vertical coordinate: `π_i = p_top + σ_i (π_s − p_top)`.
#[derive(Debug, Clone)]
pub struct VerticalCoord {
    /// Number of full layers.
    pub nlev: usize,
    /// Interface sigma values, monotone from 0 (top) to 1 (surface).
    pub sigma_i: Vec<f64>,
    /// Layer-midpoint sigma values.
    pub sigma_m: Vec<f64>,
    /// Model-top dry hydrostatic pressure \[Pa\].
    pub p_top: f64,
}

impl VerticalCoord {
    /// Uniform-in-sigma coordinate (the default 30- or 60-layer setups of
    /// Table 2 use stretched grids; uniform keeps the reproduction simple
    /// and is documented in DESIGN.md).
    pub fn uniform(nlev: usize) -> Self {
        Self::stretched(nlev, 1.0)
    }

    /// Stretched coordinate: `σ_i = (i/nlev)^stretch`, concentrating layers
    /// near the top for `stretch > 1` (where σ spacing is small).
    pub fn stretched(nlev: usize, stretch: f64) -> Self {
        assert!(nlev >= 2);
        let sigma_i: Vec<f64> = (0..=nlev)
            .map(|i| (i as f64 / nlev as f64).powf(stretch))
            .collect();
        let sigma_m: Vec<f64> = (0..nlev)
            .map(|k| 0.5 * (sigma_i[k] + sigma_i[k + 1]))
            .collect();
        VerticalCoord {
            nlev,
            sigma_i,
            sigma_m,
            p_top: P_TOP,
        }
    }

    /// Interface dry pressure for a column with surface dry pressure `ps`.
    pub fn pi_interfaces(&self, ps: f64) -> Vec<f64> {
        self.sigma_i
            .iter()
            .map(|&s| self.p_top + s * (ps - self.p_top))
            .collect()
    }

    /// Layer dry-mass thickness `δπ_k` for surface pressure `ps`.
    pub fn dpi(&self, ps: f64) -> Vec<f64> {
        (0..self.nlev)
            .map(|k| (self.sigma_i[k + 1] - self.sigma_i[k]) * (ps - self.p_top))
            .collect()
    }

    /// Surface dry pressure recovered from layer thicknesses (consistency
    /// inverse of [`Self::dpi`]).
    pub fn ps_from_dpi(&self, dpi: &[f64]) -> f64 {
        self.p_top + dpi.iter().sum::<f64>()
    }
}

/// Solve a tridiagonal system `a_k x_{k-1} + b_k x_k + c_k x_{k+1} = d_k`
/// in place by the Thomas algorithm. `a[0]` and `c[n-1]` are ignored.
///
/// The scratch slices let hot callers avoid per-column allocation; all five
/// slices must have the same length `n ≥ 1`. Diagonal dominance is the
/// caller's responsibility (all our systems are CN-discretized diffusion or
/// acoustic operators, which are strictly dominant).
pub fn thomas_solve<R: Real>(a: &[R], b: &[R], c: &[R], d: &mut [R], scratch: &mut [R]) {
    let n = b.len();
    assert!(n >= 1);
    assert!(a.len() == n && c.len() == n && d.len() == n && scratch.len() >= n);
    // Forward sweep.
    let mut beta = b[0];
    d[0] /= beta;
    for k in 1..n {
        scratch[k] = c[k - 1] / beta;
        beta = b[k] - a[k] * scratch[k];
        d[k] = (d[k] - a[k] * d[k - 1]) / beta;
    }
    // Back substitution.
    for k in (0..n - 1).rev() {
        let upd = d[k + 1];
        d[k] -= scratch[k + 1] * upd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_interfaces_are_monotone_and_span_unit() {
        for stretch in [1.0, 1.5, 2.0] {
            let vc = VerticalCoord::stretched(30, stretch);
            assert_eq!(vc.sigma_i.len(), 31);
            assert_eq!(vc.sigma_i[0], 0.0);
            assert!((vc.sigma_i[30] - 1.0).abs() < 1e-15);
            assert!(vc.sigma_i.windows(2).all(|w| w[1] > w[0]));
        }
    }

    #[test]
    fn dpi_sums_to_column_mass() {
        let vc = VerticalCoord::uniform(30);
        let ps = 98_500.0;
        let dpi = vc.dpi(ps);
        let total: f64 = dpi.iter().sum();
        assert!((total - (ps - vc.p_top)).abs() < 1e-9);
        assert!((vc.ps_from_dpi(&dpi) - ps).abs() < 1e-9);
    }

    #[test]
    fn interfaces_bracket_midpoints() {
        let vc = VerticalCoord::stretched(20, 1.7);
        for k in 0..20 {
            assert!(vc.sigma_i[k] < vc.sigma_m[k] && vc.sigma_m[k] < vc.sigma_i[k + 1]);
        }
    }

    #[test]
    fn thomas_matches_dense_solve() {
        // Random diagonally dominant system, verified by residual.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 40;
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|k| 4.0 + a[k].abs() + c[k].abs()).collect();
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut d = vec![0.0; n];
        for k in 0..n {
            d[k] = b[k] * x_true[k];
            if k > 0 {
                d[k] += a[k] * x_true[k - 1];
            }
            if k + 1 < n {
                d[k] += c[k] * x_true[k + 1];
            }
        }
        let mut scratch = vec![0.0; n];
        thomas_solve(&a, &b, &c, &mut d, &mut scratch);
        for k in 0..n {
            assert!(
                (d[k] - x_true[k]).abs() < 1e-10,
                "k={k}: {} vs {}",
                d[k],
                x_true[k]
            );
        }
    }

    #[test]
    fn thomas_single_element() {
        let mut d = vec![10.0f64];
        thomas_solve(&[0.0], &[5.0], &[0.0], &mut d, &mut [0.0]);
        assert!((d[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn thomas_f32_agrees_with_f64() {
        let n = 16;
        let a = vec![-1.0f64; n];
        let b = vec![4.0f64; n];
        let c = vec![-1.0f64; n];
        let mut d64: Vec<f64> = (0..n).map(|k| (k as f64).sin()).collect();
        let mut d32: Vec<f32> = d64.iter().map(|&x| x as f32).collect();
        let mut s64 = vec![0.0f64; n];
        let mut s32 = vec![0.0f32; n];
        thomas_solve(&a, &b, &c, &mut d64, &mut s64);
        let a32 = vec![-1.0f32; n];
        let b32 = vec![4.0f32; n];
        let c32 = vec![-1.0f32; n];
        thomas_solve(&a32, &b32, &c32, &mut d32, &mut s32);
        for k in 0..n {
            assert!((d64[k] - d32[k] as f64).abs() < 1e-5);
        }
    }
}
