//! Precision-switchable arithmetic — the Rust rendering of GRIST's custom
//! `ns` Fortran kind (§3.4.3).
//!
//! The paper manages mixed precision by declaring precision-*insensitive*
//! variables with a custom kind `ns` that is compiled as either `real(4)` or
//! `real(8)`. Here the dynamical core is generic over a [`Real`] trait with
//! `f32` and `f64` implementations; a [`PrecisionMode`] selects which
//! instantiation runs. Precision-*sensitive* terms (pressure gradient,
//! gravity/buoyancy, and the accumulated mass flux `δπV`, §3.4.2) always
//! compute and accumulate in `f64` regardless of the mode.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar usable by the dynamical core.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Default
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    const ZERO: Self;
    const ONE: Self;
    /// Bytes per element — used by the roofline performance model.
    const BYTES: usize;
    /// Human-readable name ("f32"/"f64").
    const NAME: &'static str;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn powf(self, e: Self) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn max(self, o: Self) -> Self;
    fn min(self, o: Self) -> Self;
    fn mul_add(self, a: Self, b: Self) -> Self;

    #[inline]
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
}

macro_rules! impl_real {
    ($t:ty, $name:literal) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const BYTES: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn max(self, o: Self) -> Self {
                <$t>::max(self, o)
            }
            #[inline]
            fn min(self, o: Self) -> Self {
                <$t>::min(self, o)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, "f32");
impl_real!(f64, "f64");

/// Which instantiation of the precision-generic solver runs (Table 3's
/// "Dycore" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// Everything in `f64` — the gold standard of §3.4.1.
    Double,
    /// Insensitive terms in `f32`, sensitive terms in `f64` (§3.4.2).
    Mixed,
}

impl PrecisionMode {
    pub fn label(self) -> &'static str {
        match self {
            PrecisionMode::Double => "DP",
            PrecisionMode::Mixed => "MIX",
        }
    }
}

/// Relative L2 norm of the difference between a test field and the
/// double-precision reference — the paper's §3.4.1 metric for `ps` and `vor`,
/// with its 5% acceptance threshold.
pub fn relative_l2_error(test: &[f64], gold: &[f64]) -> f64 {
    assert_eq!(test.len(), gold.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (&t, &g) in test.iter().zip(gold) {
        num += (t - g) * (t - g);
        den += g * g;
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// The paper's acceptance threshold for mixed-precision deviations (§3.4.1).
pub const MIXED_PRECISION_ERROR_THRESHOLD: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_and_constants() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f32 as Real>::BYTES, 4);
        assert_eq!(<f64 as Real>::BYTES, 8);
        assert_eq!(<f32 as Real>::NAME, "f32");
    }

    #[test]
    fn generic_arithmetic_matches_native() {
        fn poly<R: Real>(x: R) -> R {
            x.mul_add(x, R::ONE) + x.sqrt()
        }
        let a = poly(2.0f64);
        let b = poly(2.0f32) as f64;
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn relative_l2_is_zero_for_identical_fields() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(relative_l2_error(&x, &x), 0.0);
    }

    #[test]
    fn relative_l2_scales_linearly_with_perturbation() {
        let gold = vec![1.0; 100];
        let t1: Vec<f64> = gold.iter().map(|g| g + 0.01).collect();
        let t2: Vec<f64> = gold.iter().map(|g| g + 0.02).collect();
        let e1 = relative_l2_error(&t1, &gold);
        let e2 = relative_l2_error(&t2, &gold);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        assert!((e1 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn relative_l2_handles_zero_reference() {
        let z = vec![0.0; 4];
        assert_eq!(relative_l2_error(&z, &z), 0.0);
        assert!(relative_l2_error(&[1.0, 0.0, 0.0, 0.0], &z).is_infinite());
    }

    #[test]
    fn f32_field_stays_under_paper_threshold_for_smooth_data() {
        // Casting a smooth field to f32 and back must deviate far less than
        // the 5% gate — sanity check on the gate itself.
        let gold: Vec<f64> = (0..1000).map(|i| 1.0 + (i as f64 * 0.01).sin()).collect();
        let test: Vec<f64> = gold.iter().map(|&g| g as f32 as f64).collect();
        assert!(relative_l2_error(&test, &gold) < MIXED_PRECISION_ERROR_THRESHOLD / 1000.0);
    }
}
