//! Portable lane groups for the dycore's elementwise column kernels — the
//! vector counterpart of `grist_ml::gemm::simd`, generic over the working
//! precision [`Real`].
//!
//! **Lane-grouping rule.** Lanes always span *independent output elements*
//! (adjacent levels of one column, which the Fig. 9 kernels compute
//! pointwise), never a reduction. Every lane evaluates the exact expression
//! the scalar loop evaluates, operation by operation, so the lane path is
//! **bitwise identical** to the scalar-reference path — the CI kernel
//! matrix asserts exact equality, not tolerances.
//!
//! [`LaneVec`] is a plain `[R; LANE_WIDTH]` whose elementwise methods
//! compile to vector instructions (the fixed width gives the backend a
//! statically shaped loop; see `.cargo/config.toml` for the x86-64-v3
//! codegen floor). Branches become [`LaneVec::select_ge_zero`], a per-lane
//! conditional move — the same `if t ≥ 0` decision the scalar code takes,
//! made independently per lane.

use crate::real::Real;

/// Number of elements processed per lane group (256-bit f32 / two 256-bit
/// f64 vectors on v3 targets).
pub const LANE_WIDTH: usize = 8;

/// One lane group of the working precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneVec<R: Real>(pub [R; LANE_WIDTH]);

impl<R: Real> LaneVec<R> {
    #[inline]
    pub fn splat(v: R) -> Self {
        LaneVec([v; LANE_WIDTH])
    }

    /// Load from the first `LANE_WIDTH` elements of `src`.
    #[inline]
    pub fn load(src: &[R]) -> Self {
        LaneVec(std::array::from_fn(|l| src[l]))
    }

    /// Store into the first `LANE_WIDTH` elements of `dst`.
    #[inline]
    pub fn store(self, dst: &mut [R]) {
        dst[..LANE_WIDTH].copy_from_slice(&self.0);
    }

    /// Per-lane `if cond[l] ≥ 0 { a[l] } else { b[l] }` — the vector form
    /// of the upwind branches (compiles to a compare + blend).
    #[inline]
    pub fn select_ge_zero(cond: Self, a: Self, b: Self) -> Self {
        LaneVec(std::array::from_fn(|l| {
            if cond.0[l] >= R::ZERO {
                a.0[l]
            } else {
                b.0[l]
            }
        }))
    }
}

// The elementwise arithmetic lives on the std::ops traits (the kernels
// import them and call method form — `a.add(b)` chains better than operator
// syntax there), each op the exact per-lane counterpart of one scalar
// operation.
impl<R: Real> std::ops::Add for LaneVec<R> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        LaneVec(std::array::from_fn(|l| self.0[l] + o.0[l]))
    }
}

impl<R: Real> std::ops::Sub for LaneVec<R> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        LaneVec(std::array::from_fn(|l| self.0[l] - o.0[l]))
    }
}

impl<R: Real> std::ops::Mul for LaneVec<R> {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        LaneVec(std::array::from_fn(|l| self.0[l] * o.0[l]))
    }
}

impl<R: Real> std::ops::Div for LaneVec<R> {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        LaneVec(std::array::from_fn(|l| self.0[l] / o.0[l]))
    }
}

impl<R: Real> std::ops::Neg for LaneVec<R> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        LaneVec(std::array::from_fn(|l| -self.0[l]))
    }
}

/// Largest multiple of [`LANE_WIDTH`] not exceeding `n` — the boundary
/// between the lane-group body and the scalar tail.
#[inline]
pub fn lane_body(n: usize) -> usize {
    n - n % LANE_WIDTH
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::{Add, Div, Mul, Neg, Sub};

    #[test]
    fn lane_ops_match_scalar_bitwise() {
        let a: Vec<f32> = (0..LANE_WIDTH).map(|i| 1.0 + i as f32 * 0.3).collect();
        let b: Vec<f32> = (0..LANE_WIDTH).map(|i| 0.7 - i as f32 * 0.11).collect();
        let (va, vb) = (LaneVec::load(&a), LaneVec::load(&b));
        let mut out = vec![0.0f32; LANE_WIDTH];
        va.add(vb).mul(va).div(vb).sub(va.neg()).store(&mut out);
        for l in 0..LANE_WIDTH {
            assert_eq!(out[l], (a[l] + b[l]) * a[l] / b[l] - (-a[l]));
        }
    }

    #[test]
    fn select_follows_the_sign_per_lane() {
        let c: Vec<f64> = (0..LANE_WIDTH).map(|i| i as f64 - 3.5).collect();
        let sel =
            LaneVec::select_ge_zero(LaneVec::load(&c), LaneVec::splat(1.0), LaneVec::splat(-1.0));
        for l in 0..LANE_WIDTH {
            assert_eq!(sel.0[l], if c[l] >= 0.0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn lane_body_splits_at_the_width() {
        assert_eq!(lane_body(0), 0);
        assert_eq!(lane_body(7), 0);
        assert_eq!(lane_body(8), 8);
        assert_eq!(lane_body(30), 24);
    }
}
