//! # grist-dycore
//!
//! The layer-averaged nonhydrostatic dynamical core of the GRIST-rs
//! reproduction: staggered finite-volume operators on the unstructured
//! hexagonal C-grid, a horizontally-explicit / vertically-implicit (HEVI)
//! integrator, flux-limited tracer transport, and the precision-switchable
//! (`ns`-style) mixed-precision machinery of §3.4 of the paper.

// Indexed loops mirror the Fortran stencil kernels they reproduce and are
// clearer than iterator chains for staggered-grid code.
#![allow(clippy::needless_range_loop)]
pub mod cfl;
pub mod constants;
pub mod diffusion;
pub mod energetics;
pub mod field;
pub mod hevi;
pub mod kernels;
pub mod lanes;
pub mod operators;
pub mod real;
pub mod swe;
pub mod swe_cases;
pub mod tracer;
pub mod vertical;

pub use cfl::{cfl_report, max_acoustic_dt, CflReport};
pub use energetics::{energy_budget, EnergyBudget};
pub use field::{Field1, Field2};
pub use hevi::{NhSolver, NhState};
pub use lanes::{lane_body, LaneVec, LANE_WIDTH};
pub use operators::ScaledGeometry;
pub use real::{relative_l2_error, PrecisionMode, Real, MIXED_PRECISION_ERROR_THRESHOLD};
pub use swe::{SwePhases, SweSolver, SweState, SweSubset};
pub use vertical::VerticalCoord;
