//! The layer-averaged nonhydrostatic core with HEVI time stepping (§3.1.2):
//! "A horizontally explicit and vertically implicit approach is used to
//! discretely solve the nonhydrostatic compressible equation set, requiring
//! minimal data exchange procedures across the horizontal computations
//! without the need for global communication."
//!
//! ## Equations (the six prognostic equations of Fig. 3)
//!
//! In the dry-mass vertical coordinate `π` (σ-type, [`VerticalCoord`]):
//!
//! 1. dry mass           `∂δπ/∂t = −∇·(δπ V) − δ(ṁ)`
//! 2. horizontal momentum `∂u/∂t = (ζ+f)·v_t − ∂ₙK − c_p θ_e ∂ₙΠ − ν∇(∇·V)` (vector-invariant)
//! 3. potential temperature `∂Θ/∂t = −∇·(Θ V) − δ(ṁ θ̃)`, `Θ = δπ·θ`
//! 4. vertical momentum   `∂w/∂t = g (∂p/∂π − 1)`   (implicit)
//! 5. geopotential        `∂φ/∂t = g w`              (implicit)
//! 6. tracers             flux-form FCT transport ([`crate::tracer`])
//!
//! The implicit vertical solve linearizes the equation of state
//! `p = p₀ (ρ R_d θ / p₀)^{1/(1−κ)}` in `δφ` and reduces each column to a
//! tridiagonal system in the interface `w` — the standard HEVI treatment of
//! vertically-propagating acoustic modes.
//!
//! ## Precision split (§3.4.2)
//!
//! The solver is generic over `R`, the paper's `ns` kind: horizontal
//! advective/vector-invariant terms run in `R`. The *sensitive* quantities —
//! the accumulated dry-mass flux `δπV`, the mass/Θ fields themselves, and the
//! pressure-gradient / gravity (implicit) terms — always use `f64`.

use crate::constants::{CP, GRAVITY, KAPPA, P0, RDRY};
use crate::field::Field2;
use crate::operators::{self as op, ScaledGeometry};
use crate::real::Real;
use crate::tracer::{fct_transport_step, FctWorkspace};
use crate::vertical::{thomas_solve, VerticalCoord};
use grist_mesh::{HexMesh, EARTH_OMEGA, EARTH_RADIUS_M};
use sunway_sim::{ColumnsMut, Substrate};

/// Prognostic state of the nonhydrostatic core.
///
/// Layer fields have `nlev` levels; interface fields have `nlev + 1`
/// (index 0 = model top, `nlev` = surface).
#[derive(Debug, Clone)]
pub struct NhState<R: Real> {
    /// Dry-mass thickness `δπ` per layer \[Pa\] — sensitive, always `f64`.
    pub dpi: Field2<f64>,
    /// Mass-weighted potential temperature `Θ = δπ θ` \[Pa·K\] — `f64`.
    pub theta_m: Field2<f64>,
    /// Edge-normal velocity \[m/s\] — working precision.
    pub u: Field2<R>,
    /// Interface vertical velocity \[m/s\] — enters the gravity terms, `f64`.
    pub w: Field2<f64>,
    /// Interface geopotential \[m²/s²\] — `f64`.
    pub phi: Field2<f64>,
    /// Tracer mixing ratios (e.g. qv, qc, qr) — working precision.
    pub tracers: Vec<Field2<R>>,
}

impl<R: Real> NhState<R> {
    /// Surface dry pressure `p_top + Σ δπ` per cell — the `ps` observable of
    /// the mixed-precision gate (§3.4.1).
    pub fn surface_pressure(&self, p_top: f64) -> Vec<f64> {
        (0..self.dpi.ncols())
            .map(|c| p_top + self.dpi.col(c).iter().sum::<f64>())
            .collect()
    }

    /// Cast the working-precision fields to another precision (the
    /// initialization-time conversion of §3.4.3).
    pub fn cast<S: Real>(&self) -> NhState<S> {
        NhState {
            dpi: self.dpi.clone(),
            theta_m: self.theta_m.clone(),
            u: self.u.cast(),
            w: self.w.clone(),
            phi: self.phi.clone(),
            tracers: self.tracers.iter().map(|t| t.cast()).collect(),
        }
    }
}

/// Configuration of the nonhydrostatic solver.
#[derive(Debug, Clone)]
pub struct NhConfig {
    /// Divergence damping coefficient (fraction of the maximum stable value;
    /// 0 disables). Applied as `+ν ∂ₙ(∇·V)` to suppress acoustic noise, as
    /// all HEVI cores do.
    pub div_damp: f64,
    /// Off-centering of the implicit vertical solve (1 = backward Euler).
    pub beta: f64,
    /// Number of passive tracers carried.
    pub ntracers: usize,
}

impl Default for NhConfig {
    fn default() -> Self {
        NhConfig {
            div_damp: 0.12,
            beta: 1.0,
            ntracers: 1,
        }
    }
}

/// The nonhydrostatic HEVI solver with pre-allocated scratch space.
pub struct NhSolver<R: Real> {
    pub mesh: HexMesh,
    pub vc: VerticalCoord,
    pub config: NhConfig,
    /// Execution target for every hot loop (§3.3): serial MPE fallback or
    /// SWGOMP CPE-team offload. Clones share the job server and profiler.
    pub sub: Substrate,
    /// Working-precision metric terms.
    pub geom: ScaledGeometry<R>,
    /// Double-precision metric terms for the sensitive terms.
    pub geom64: ScaledGeometry<f64>,
    // --- scratch (layer fields) ---
    theta: Field2<f64>,
    dphi: Field2<f64>,
    pres: Field2<f64>,
    exner: Field2<f64>,
    mass_flux: Field2<f64>,
    div_mass: Field2<f64>,
    theta_flux: Field2<f64>,
    div_theta: Field2<f64>,
    ke: Field2<R>,
    vor: Field2<R>,
    pv_edge: Field2<R>,
    ve: Field2<R>,
    vn: Field2<R>,
    vt: Field2<R>,
    grad_ke: Field2<R>,
    grad_exner: Field2<f64>,
    theta_edge: Field2<f64>,
    div_u: Field2<R>,
    grad_div: Field2<R>,
    mdot: Field2<f64>,
    fct_ws: Option<FctWorkspace<R>>,
    tracer_mass: Field2<R>,
    tracer_flux: Field2<R>,
}

impl<R: Real> NhSolver<R> {
    pub fn new(mesh: HexMesh, vc: VerticalCoord, config: NhConfig) -> Self {
        Self::with_substrate(mesh, vc, config, Substrate::serial())
    }

    /// Build the solver on an explicit execution target (the `!$omp target`
    /// choice of §3.3): pass [`Substrate::cpe_teams`] to offload every hot
    /// loop through the SWGOMP job server.
    pub fn with_substrate(
        mesh: HexMesh,
        vc: VerticalCoord,
        config: NhConfig,
        sub: Substrate,
    ) -> Self {
        let nlev = vc.nlev;
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_verts());
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let geom64 = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        NhSolver {
            geom,
            geom64,
            theta: Field2::zeros(nlev, nc),
            dphi: Field2::zeros(nlev, nc),
            pres: Field2::zeros(nlev, nc),
            exner: Field2::zeros(nlev, nc),
            mass_flux: Field2::zeros(nlev, ne),
            div_mass: Field2::zeros(nlev, nc),
            theta_flux: Field2::zeros(nlev, ne),
            div_theta: Field2::zeros(nlev, nc),
            ke: Field2::zeros(nlev, nc),
            vor: Field2::zeros(nlev, nv),
            pv_edge: Field2::zeros(nlev, ne),
            ve: Field2::zeros(nlev, nv),
            vn: Field2::zeros(nlev, nv),
            vt: Field2::zeros(nlev, ne),
            grad_ke: Field2::zeros(nlev, ne),
            grad_exner: Field2::zeros(nlev, ne),
            theta_edge: Field2::zeros(nlev, ne),
            div_u: Field2::zeros(nlev, nc),
            grad_div: Field2::zeros(nlev, ne),
            mdot: Field2::zeros(nlev + 1, nc),
            fct_ws: Some(FctWorkspace::new(nlev, &mesh)),
            tracer_mass: Field2::zeros(nlev, nc),
            tracer_flux: Field2::zeros(nlev, ne),
            mesh,
            vc,
            config,
            sub,
        }
    }

    /// Hydrostatically balanced isothermal state at rest with temperature
    /// `t0` and uniform surface pressure `ps`, carrying `ntracers` zeroed
    /// tracers (the first initialized to a constant 1e-3 mixing ratio).
    pub fn isothermal_rest_state(&self, t0: f64, ps: f64) -> NhState<R> {
        let nlev = self.vc.nlev;
        let nc = self.mesh.n_cells();
        let pi_i = self.vc.pi_interfaces(ps);
        let dpi_col = self.vc.dpi(ps);

        let mut dpi = Field2::zeros(nlev, nc);
        let mut theta_m = Field2::zeros(nlev, nc);
        let mut phi = Field2::zeros(nlev + 1, nc);
        for c in 0..nc {
            // Hydrostatic: p = π at layer midpoints; integrate φ upward.
            let mut phi_below = 0.0; // flat surface, z_s = 0
            phi.set(nlev, c, phi_below);
            for k in (0..nlev).rev() {
                let p_mid = 0.5 * (pi_i[k] + pi_i[k + 1]);
                let theta = t0 * (P0 / p_mid).powf(KAPPA);
                dpi.set(k, c, dpi_col[k]);
                theta_m.set(k, c, dpi_col[k] * theta);
                // δφ = δπ R_d T / p  (ρ = p/(R_d T))
                let dphi = dpi_col[k] * RDRY * t0 / p_mid;
                phi_below += dphi;
                phi.set(k, c, phi_below);
            }
        }
        let mut tracers = Vec::with_capacity(self.config.ntracers);
        for i in 0..self.config.ntracers {
            let v = if i == 0 { R::from_f64(1e-3) } else { R::ZERO };
            tracers.push(Field2::constant(nlev, nc, v));
        }
        NhState {
            dpi,
            theta_m,
            u: Field2::zeros(nlev, self.mesh.n_edges()),
            w: Field2::zeros(nlev + 1, nc),
            phi,
            tracers,
        }
    }

    /// Diagnose layer θ, δφ, p and Π from the prognostic state.
    fn diagnose(&mut self, state: &NhState<R>) {
        let nlev = self.vc.nlev;
        let gamma = 1.0 / (1.0 - KAPPA);
        let theta = ColumnsMut::new(self.theta.as_mut_slice(), nlev);
        let dphi = ColumnsMut::new(self.dphi.as_mut_slice(), nlev);
        let pres = ColumnsMut::new(self.pres.as_mut_slice(), nlev);
        let exner = ColumnsMut::new(self.exner.as_mut_slice(), nlev);
        self.sub.run("hevi_diagnose", theta.len(), |c| {
            // SAFETY: each cell index is dispatched exactly once.
            let th = unsafe { theta.col(c) };
            let dp = unsafe { dphi.col(c) };
            let pr = unsafe { pres.col(c) };
            let ex = unsafe { exner.col(c) };
            let dpi = state.dpi.col(c);
            let phi = state.phi.col(c);
            for k in 0..nlev {
                let t = state.theta_m.at(k, c) / dpi[k];
                let d = phi[k] - phi[k + 1];
                debug_assert!(d > 0.0, "negative layer thickness at cell {c} lev {k}");
                let rho = dpi[k] / d;
                let p = P0 * (rho * RDRY * t / P0).powf(gamma);
                th[k] = t;
                dp[k] = d;
                pr[k] = p;
                ex[k] = (p / P0).powf(KAPPA);
            }
        });
    }

    /// One full HEVI dynamics step of `dt` seconds: explicit horizontal
    /// forward-backward update, then the implicit vertical acoustic solve,
    /// then FCT tracer transport.
    pub fn step(&mut self, state: &mut NhState<R>, dt: f64) {
        // All kernels below record under the "dycore" trace span, so the
        // metrics registry can attribute step time to the dynamical core.
        // (Cloned handle: the guard must not borrow `self`.)
        let span_sub = self.sub.clone();
        let _span = span_sub.span("dycore");
        self.diagnose(state);
        let nlev = self.vc.nlev;
        let mesh = &self.mesh;

        // ---------- horizontal explicit phase ----------
        // Vector-invariant momentum pieces in working precision.
        let sub = self.sub.clone();
        op::kinetic_energy(&sub, mesh, &self.geom, &state.u, &mut self.ke);
        op::vorticity(&sub, mesh, &self.geom, &state.u, &mut self.vor);
        {
            let f = &self.geom.f_vert;
            let cols = ColumnsMut::new(self.vor.as_mut_slice(), nlev);
            sub.run("hevi_abs_vorticity", cols.len(), |v| {
                // SAFETY: each vertex index is dispatched exactly once.
                for x in unsafe { cols.col(v) }.iter_mut() {
                    *x += f[v];
                }
            });
        }
        op::vert_to_edge(&sub, mesh, &self.vor, &mut self.pv_edge);
        op::vert_velocity(&sub, mesh, &self.geom, &state.u, &mut self.ve, &mut self.vn);
        op::tangential_velocity(&sub, mesh, &self.geom, &self.ve, &self.vn, &mut self.vt);
        op::gradient(&sub, mesh, &self.geom, &self.ke, &mut self.grad_ke);

        // Divergence damping (working precision).
        op::divergence(&sub, mesh, &self.geom, &state.u, &mut self.div_u);
        op::gradient(&sub, mesh, &self.geom, &self.div_u, &mut self.grad_div);

        // Pressure-gradient force in f64 (sensitive, §3.4.2).
        op::gradient(&sub, mesh, &self.geom64, &self.exner, &mut self.grad_exner);
        op::cell_to_edge(&sub, mesh, &self.theta, &mut self.theta_edge);

        // Mean edge spacing for the damping coefficient scale ν = c·Δx²/dt.
        let dx2 = {
            let mean_de: f64 = self.mesh.edge_de.iter().sum::<f64>() / self.mesh.n_edges() as f64;
            let d = mean_de * EARTH_RADIUS_M;
            d * d
        };
        let nu = R::from_f64(self.config.div_damp * dx2 / dt);

        // Momentum update (forward step).
        let dt_r = R::from_f64(dt);
        {
            let pv = &self.pv_edge;
            let vt = &self.vt;
            let gke = &self.grad_ke;
            let gdiv = &self.grad_div;
            let gex = &self.grad_exner;
            let te = &self.theta_edge;
            let cols = ColumnsMut::new(state.u.as_mut_slice(), nlev);
            sub.run("hevi_momentum_update", cols.len(), |e| {
                // SAFETY: each edge index is dispatched exactly once.
                let col = unsafe { cols.col(e) };
                for k in 0..nlev {
                    let cor = pv.at(k, e) * vt.at(k, e);
                    // Pressure-gradient force assembled in f64, cast once
                    // (§3.4.2: sensitive term).
                    let pgf = R::from_f64(CP * te.at(k, e) * gex.at(k, e));
                    let tend = cor - gke.at(k, e) - pgf + nu * gdiv.at(k, e);
                    col[k] += dt_r * tend;
                }
            });
        }

        // Dry-mass flux δπ·u with the *updated* velocity (forward-backward)
        // — accumulated in f64 per §3.4.2.
        {
            let u = &state.u;
            let dpi = &state.dpi;
            let cols = ColumnsMut::new(self.mass_flux.as_mut_slice(), nlev);
            sub.run("hevi_mass_flux", cols.len(), |e| {
                // SAFETY: each edge index is dispatched exactly once.
                let col = unsafe { cols.col(e) };
                let [c1, c2] = mesh.edge_cells[e];
                let (a, b) = (dpi.col(c1 as usize), dpi.col(c2 as usize));
                for k in 0..nlev {
                    col[k] = 0.5 * (a[k] + b[k]) * u.at(k, e).to_f64();
                }
            });
        }
        op::divergence(
            &sub,
            mesh,
            &self.geom64,
            &self.mass_flux,
            &mut self.div_mass,
        );

        // Vertical (σ-coordinate) mass flux ṁ at interfaces.
        {
            let sigma_i = &self.vc.sigma_i;
            let div_mass = &self.div_mass;
            let cols = ColumnsMut::new(self.mdot.as_mut_slice(), nlev + 1);
            sub.run("hevi_vertical_mdot", cols.len(), |c| {
                // SAFETY: each cell index is dispatched exactly once.
                let col = unsafe { cols.col(c) };
                let dcol = div_mass.col(c);
                let dps_dt: f64 = -dcol.iter().sum::<f64>();
                let mut acc = 0.0;
                col[0] = 0.0;
                for k in 0..nlev {
                    acc += dcol[k];
                    col[k + 1] = -(sigma_i[k + 1] * dps_dt + acc);
                }
                col[nlev] = 0.0; // exact closure at the surface
            });
        }

        // Θ flux and divergence (centered horizontal).
        {
            let theta = &self.theta;
            let mass_flux = &self.mass_flux;
            let cols = ColumnsMut::new(self.theta_flux.as_mut_slice(), nlev);
            sub.run("hevi_theta_flux", cols.len(), |e| {
                // SAFETY: each edge index is dispatched exactly once.
                let col = unsafe { cols.col(e) };
                let [c1, c2] = mesh.edge_cells[e];
                let (a, b) = (theta.col(c1 as usize), theta.col(c2 as usize));
                for k in 0..nlev {
                    col[k] = mass_flux.at(k, e) * 0.5 * (a[k] + b[k]);
                }
            });
        }
        op::divergence(
            &sub,
            mesh,
            &self.geom64,
            &self.theta_flux,
            &mut self.div_theta,
        );

        // Update δπ and Θ, including vertical transport (first-order upwind
        // for the vertical θ̃).
        {
            let div_mass = &self.div_mass;
            let div_theta = &self.div_theta;
            let mdot = &self.mdot;
            let theta = &self.theta;
            let dpi_cols = ColumnsMut::new(state.dpi.as_mut_slice(), nlev);
            let th_cols = ColumnsMut::new(state.theta_m.as_mut_slice(), nlev);
            sub.run("hevi_mass_theta_update", dpi_cols.len(), |c| {
                // SAFETY: each cell index is dispatched exactly once.
                let dpi_c = unsafe { dpi_cols.col(c) };
                let th_c = unsafe { th_cols.col(c) };
                let md = mdot.col(c);
                let th = theta.col(c);
                for k in 0..nlev {
                    // Interface θ̃ by upwinding on ṁ (positive = downward).
                    let th_top = if k == 0 {
                        th[0]
                    } else if md[k] >= 0.0 {
                        th[k - 1]
                    } else {
                        th[k]
                    };
                    // At the surface (k+1 == nlev) ṁ is zero so the
                    // upwind pick is immaterial; otherwise upwind on ṁ.
                    let th_bot = if k + 1 == nlev || md[k + 1] >= 0.0 {
                        th[k]
                    } else {
                        th[k + 1]
                    };
                    dpi_c[k] += dt * (-div_mass.at(k, c) - (md[k + 1] - md[k]));
                    th_c[k] += dt * (-div_theta.at(k, c) - (md[k + 1] * th_bot - md[k] * th_top));
                }
            });
        }

        // ---------- implicit vertical acoustic phase ----------
        self.implicit_vertical(state, dt);

        // ---------- tracer transport ----------
        let mesh = &self.mesh; // re-borrow after the &mut call above
        if !state.tracers.is_empty() {
            // Tracer mass in working precision: M_i = δπ_i A_i R².
            let r2 = EARTH_RADIUS_M * EARTH_RADIUS_M;
            {
                let dpi = &state.dpi;
                let div_mass = &self.div_mass;
                let cols = ColumnsMut::new(self.tracer_mass.as_mut_slice(), nlev);
                sub.run("hevi_tracer_mass", cols.len(), |c| {
                    // SAFETY: each cell index is dispatched exactly once.
                    let col = unsafe { cols.col(c) };
                    let a = mesh.cell_area[c] * r2;
                    for (k, x) in col.iter_mut().enumerate() {
                        // mass *before* this step's transport:
                        // reconstruct from post-update dpi minus the
                        // divergence applied — instead we simply use the
                        // pre-transport mass implied by the flux field,
                        // which keeps the FCT update consistent.
                        *x = R::from_f64((dpi.at(k, c) + dt * div_mass.at(k, c)) * a);
                    }
                });
                let mass_flux = &self.mass_flux;
                let cols = ColumnsMut::new(self.tracer_flux.as_mut_slice(), nlev);
                sub.run("hevi_tracer_flux", cols.len(), |e| {
                    // SAFETY: each edge index is dispatched exactly once.
                    let col = unsafe { cols.col(e) };
                    for (k, x) in col.iter_mut().enumerate() {
                        *x = R::from_f64(mass_flux.at(k, e));
                    }
                });
            }
            let mut ws = self.fct_ws.take().expect("FCT workspace");
            for q in &mut state.tracers {
                let mut mass = self.tracer_mass.clone();
                fct_transport_step(
                    &sub,
                    &self.mesh,
                    &self.geom,
                    &mut mass,
                    &self.tracer_flux,
                    q,
                    dt,
                    &mut ws,
                );
            }
            self.fct_ws = Some(ws);
        }
    }

    /// Backward-Euler (β-off-centered) solve of the coupled w–φ acoustic
    /// system, column by column.
    fn implicit_vertical(&mut self, state: &mut NhState<R>, dt: f64) {
        self.diagnose(state); // refresh p, δφ after the horizontal update
        let nlev = self.vc.nlev;
        let gamma = 1.0 / (1.0 - KAPPA);
        let g = GRAVITY;
        let beta = self.config.beta;
        let p_top = self.vc.p_top;
        let pres = &self.pres;
        let dphi = &self.dphi;

        let w_cols = ColumnsMut::new(state.w.as_mut_slice(), nlev + 1);
        let phi_cols = ColumnsMut::new(state.phi.as_mut_slice(), nlev + 1);
        let dpi_ro = &state.dpi;
        self.sub.run("hevi_implicit_vertical", w_cols.len(), |c| {
            // SAFETY: each cell index is dispatched exactly once.
            let w = unsafe { w_cols.col(c) };
            let phi = unsafe { phi_cols.col(c) };
            {
                let dpi = dpi_ro.col(c);
                let p = pres.col(c);
                let dp = dphi.col(c);
                // Linearization coefficients C_k = γ p_k Δt g / δφ_k
                // (δφ responds with the *full* Δt; β enters through the
                // pressure off-centering below).
                let mut cc = vec![0.0f64; nlev];
                for k in 0..nlev {
                    cc[k] = gamma * p[k] * dt * g / dp[k];
                }
                // Unknowns w_i, i = 0..nlev-1 (w_nlev = 0 at the flat surface).
                let n = nlev;
                let mut a = vec![0.0f64; n];
                let mut b = vec![0.0f64; n];
                let mut cvec = vec![0.0f64; n];
                let mut d = vec![0.0f64; n];
                let mut scratch = vec![0.0f64; n];
                for i in 0..n {
                    let dpi_half = if i == 0 {
                        0.5 * dpi[0]
                    } else {
                        0.5 * (dpi[i - 1] + dpi[i])
                    };
                    let fac = beta * dt * g / dpi_half;
                    let p_above = if i == 0 { p_top } else { p[i - 1] };
                    let c_above = if i == 0 { 0.0 } else { cc[i - 1] };
                    a[i] = -fac * c_above;
                    b[i] = 1.0 + fac * (cc[i] + c_above);
                    cvec[i] = -fac * cc[i]; // couples to w_{i+1}; w_n = 0
                    d[i] = w[i] + dt * g * ((p[i] - p_above) / dpi_half - 1.0);
                }
                thomas_solve(&a, &b, &cvec, &mut d, &mut scratch);
                w[..n].copy_from_slice(&d[..n]);
                for i in 0..n {
                    phi[i] += dt * g * d[i];
                }
                // Surface: rigid flat lower boundary.
                w[n] = 0.0;
            }
        });
    }

    /// Diagnose and expose the layer fields the physics–dynamics coupling
    /// interface needs (§3.2.4): pressure, potential temperature, and layer
    /// geopotential thickness.
    pub fn diagnose_fields(
        &mut self,
        state: &NhState<R>,
    ) -> (&Field2<f64>, &Field2<f64>, &Field2<f64>, &Field2<f64>) {
        self.diagnose(state);
        (&self.pres, &self.theta, &self.dphi, &self.exner)
    }

    /// Relative vorticity at dual vertices of the current `u` — the `vor`
    /// observable of the mixed-precision gate, returned as f64.
    pub fn vorticity_diag(&mut self, state: &NhState<R>) -> Vec<f64> {
        let sub = self.sub.clone();
        op::vorticity(&sub, &self.mesh, &self.geom, &state.u, &mut self.vor);
        self.vor.to_f64_vec()
    }

    /// Global dry-air mass `Σ_c A_c Σ_k δπ_k` (conservation diagnostic).
    pub fn total_dry_mass(&self, state: &NhState<R>) -> f64 {
        let r2 = EARTH_RADIUS_M * EARTH_RADIUS_M;
        (0..self.mesh.n_cells())
            .map(|c| state.dpi.col(c).iter().sum::<f64>() * self.mesh.cell_area[c] * r2)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver(level: u32, nlev: usize) -> NhSolver<f64> {
        NhSolver::new(
            HexMesh::build(level),
            VerticalCoord::uniform(nlev),
            NhConfig::default(),
        )
    }

    #[test]
    fn isothermal_state_is_hydrostatic() {
        // p diagnosed from the EOS must equal π at layer midpoints.
        let mut s = solver(2, 12);
        let st = s.isothermal_rest_state(280.0, 1.0e5);
        s.diagnose(&st);
        let pi_i = s.vc.pi_interfaces(1.0e5);
        for k in 0..12 {
            let p_mid = 0.5 * (pi_i[k] + pi_i[k + 1]);
            let p = s.pres.at(k, 0);
            assert!(
                ((p - p_mid) / p_mid).abs() < 1e-10,
                "lev {k}: p = {p}, π_mid = {p_mid}"
            );
        }
    }

    #[test]
    fn rest_state_stays_at_rest() {
        let mut s = solver(2, 10);
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        for _ in 0..20 {
            s.step(&mut st, 120.0);
        }
        let umax = st.u.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let wmax = st.w.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(umax < 1e-8, "spurious horizontal wind {umax}");
        assert!(wmax < 1e-6, "spurious vertical wind {wmax}");
    }

    #[test]
    fn dry_mass_conserved_under_motion() {
        let mut s = solver(2, 8);
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        // Kick the flow.
        for e in 0..s.mesh.n_edges() {
            for k in 0..8 {
                let m = s.mesh.edge_mid[e];
                st.u.set(k, e, 5.0 * m.z * s.mesh.edge_normal[e].x);
            }
        }
        let m0 = s.total_dry_mass(&st);
        for _ in 0..20 {
            s.step(&mut st, 120.0);
        }
        let m1 = s.total_dry_mass(&st);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "dry mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn warm_bubble_rises() {
        // Heating the lowest layers of one column must produce upward w there.
        let mut s = solver(2, 12);
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        let hot = 0usize;
        for k in 8..12 {
            let dpi = st.dpi.at(k, hot);
            let th = st.theta_m.at(k, hot) / dpi;
            st.theta_m.set(k, hot, dpi * (th + 5.0));
        }
        // The pressure perturbation launches an updraft that the implicit
        // (backward-Euler) solver rings down over a few steps — track the
        // peak across the adjustment.
        let mut w_peak = f64::MIN;
        for _ in 0..10 {
            s.step(&mut st, 60.0);
            let w_max_col = (0..13).map(|i| st.w.at(i, hot)).fold(f64::MIN, f64::max);
            w_peak = w_peak.max(w_max_col);
        }
        assert!(w_peak > 0.05, "no updraft over warm bubble: {w_peak}");
        // And the adjustment must decay, not blow up.
        let w_final = (0..13)
            .map(|i| st.w.at(i, hot).abs())
            .fold(0.0f64, f64::max);
        assert!(w_final < w_peak, "acoustic adjustment did not decay");
    }

    #[test]
    fn stable_integration_with_perturbed_flow() {
        let mut s = solver(3, 10);
        let mut st = s.isothermal_rest_state(290.0, 1.0e5);
        for e in 0..s.mesh.n_edges() {
            let m = s.mesh.edge_mid[e];
            for k in 0..10 {
                let jet = 15.0 * (2.0 * m.lat()).cos().powi(2);
                let zonal = grist_mesh::Vec3::new(0.0, 0.0, 1.0).cross(m);
                st.u.set(k, e, jet * zonal.dot(s.mesh.edge_normal[e]));
            }
        }
        for _ in 0..40 {
            s.step(&mut st, 120.0);
        }
        assert!(st.u.as_slice().iter().all(|x| x.is_finite()));
        assert!(st.w.as_slice().iter().all(|x| x.is_finite()));
        let umax = st.u.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(umax < 200.0, "flow blew up: max |u| = {umax}");
    }

    #[test]
    fn tracer_stays_constant_when_uniform() {
        let mut s = solver(2, 8);
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        for e in 0..s.mesh.n_edges() {
            let m = s.mesh.edge_mid[e];
            let zonal = grist_mesh::Vec3::new(0.0, 0.0, 1.0).cross(m);
            for k in 0..8 {
                st.u.set(k, e, 10.0 * zonal.dot(s.mesh.edge_normal[e]));
            }
        }
        for _ in 0..10 {
            s.step(&mut st, 120.0);
        }
        for &q in st.tracers[0].as_slice() {
            assert!((q - 1e-3).abs() < 1e-9, "uniform tracer drifted: {q}");
        }
    }

    #[test]
    fn mixed_precision_gate_on_short_run() {
        // §3.4.1: ps and vor relative-L2 deviation of the f32 working
        // precision vs the f64 gold standard stays under 5%.
        let mesh = HexMesh::build(2);
        let vc = VerticalCoord::uniform(8);
        let mut s64 = NhSolver::<f64>::new(mesh.clone(), vc.clone(), NhConfig::default());
        let mut s32 = NhSolver::<f32>::new(mesh, vc, NhConfig::default());
        let mut g = s64.isothermal_rest_state(285.0, 1.0e5);
        for e in 0..s64.mesh.n_edges() {
            let m = s64.mesh.edge_mid[e];
            let zonal = grist_mesh::Vec3::new(0.0, 0.0, 1.0).cross(m);
            for k in 0..8 {
                g.u.set(
                    k,
                    e,
                    20.0 * m.lat().cos() * zonal.dot(s64.mesh.edge_normal[e]),
                );
            }
        }
        let mut m = g.cast::<f32>();
        for _ in 0..30 {
            s64.step(&mut g, 120.0);
            s32.step(&mut m, 120.0);
        }
        let ps_g = g.surface_pressure(s64.vc.p_top);
        let ps_m = m.surface_pressure(s32.vc.p_top);
        let e_ps = crate::real::relative_l2_error(&ps_m, &ps_g);
        assert!(
            e_ps < crate::real::MIXED_PRECISION_ERROR_THRESHOLD,
            "ps deviation {e_ps}"
        );
        let vor_g = s64.vorticity_diag(&g);
        let vor_m = s32.vorticity_diag(&m);
        let e_vor = crate::real::relative_l2_error(&vor_m, &vor_g);
        assert!(
            e_vor < crate::real::MIXED_PRECISION_ERROR_THRESHOLD,
            "vor deviation {e_vor}"
        );
    }
}
