//! Global energy and mass budget diagnostics for the nonhydrostatic state:
//! the conservation watch-dogs every long climate integration runs with
//! (the paper's 10-year stability claim in §4.5 is exactly this kind of
//! bookkeeping).
//!
//! Budgets are area-weighted global integrals per unit area \[J/m²\]:
//! internal `cᵥT·δπ/g`, potential `Φ̄·δπ/g`, kinetic horizontal
//! `K·δπ/g`, kinetic vertical `w̄²/2·δπ/g`.

use crate::constants::{CV, GRAVITY};
use crate::field::Field2;
use crate::hevi::{NhSolver, NhState};
use crate::operators as op;
use crate::real::Real;

/// Global energy budget snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBudget {
    /// Internal energy \[J/m²\].
    pub internal: f64,
    /// Potential energy \[J/m²\].
    pub potential: f64,
    /// Horizontal kinetic energy \[J/m²\].
    pub kinetic_h: f64,
    /// Vertical kinetic energy \[J/m²\].
    pub kinetic_w: f64,
    /// Column dry mass \[kg/m²\].
    pub mass: f64,
    /// Column water vapour \[kg/m²\] (tracer 0).
    pub water: f64,
}

impl EnergyBudget {
    pub fn total(&self) -> f64 {
        self.internal + self.potential + self.kinetic_h + self.kinetic_w
    }

    /// Relative drift of the total energy vs a reference budget.
    pub fn drift_from(&self, reference: &EnergyBudget) -> f64 {
        (self.total() - reference.total()) / reference.total()
    }
}

/// Compute the global budget of a state.
pub fn energy_budget<R: Real>(solver: &mut NhSolver<R>, state: &NhState<R>) -> EnergyBudget {
    let mesh = solver.mesh.clone();
    let nlev = solver.vc.nlev;
    let (_pres, theta, _dphi, exner) = solver.diagnose_fields(state);
    let theta = theta.clone();
    let exner = exner.clone();

    // Horizontal KE per cell from the edge velocities.
    let mut ke = Field2::<R>::zeros(nlev, mesh.n_cells());
    op::kinetic_energy(&solver.sub.clone(), &mesh, &solver.geom, &state.u, &mut ke);

    let total_area: f64 = mesh.cell_area.iter().sum();
    let mut internal = 0.0;
    let mut potential = 0.0;
    let mut kinetic_h = 0.0;
    let mut kinetic_w = 0.0;
    let mut mass = 0.0;
    let mut water = 0.0;
    for c in 0..mesh.n_cells() {
        let w_area = mesh.cell_area[c] / total_area;
        for k in 0..nlev {
            let dm = state.dpi.at(k, c) / GRAVITY; // layer mass kg/m²
            let t = theta.at(k, c) * exner.at(k, c);
            let phi_mid = 0.5 * (state.phi.at(k, c) + state.phi.at(k + 1, c));
            let w_mid = 0.5 * (state.w.at(k, c) + state.w.at(k + 1, c));
            internal += w_area * dm * CV * t;
            potential += w_area * dm * phi_mid;
            kinetic_h += w_area * dm * ke.at(k, c).to_f64();
            kinetic_w += w_area * dm * 0.5 * w_mid * w_mid;
            mass += w_area * dm;
            if !state.tracers.is_empty() {
                water += w_area * dm * state.tracers[0].at(k, c).to_f64();
            }
        }
    }
    EnergyBudget {
        internal,
        potential,
        kinetic_h,
        kinetic_w,
        mass,
        water,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hevi::NhConfig;
    use crate::vertical::VerticalCoord;
    use grist_mesh::HexMesh;

    fn solver() -> NhSolver<f64> {
        NhSolver::new(
            HexMesh::build(2),
            VerticalCoord::uniform(10),
            NhConfig::default(),
        )
    }

    #[test]
    fn rest_state_budget_has_earthlike_magnitudes() {
        let mut s = solver();
        let st = s.isothermal_rest_state(280.0, 1.0e5);
        let b = energy_budget(&mut s, &st);
        // Column mass ≈ (ps − p_top)/g ≈ 1.017e4 kg/m².
        assert!(
            (b.mass - (1.0e5 - 225.0) / GRAVITY).abs() < 1.0,
            "mass {}",
            b.mass
        );
        // Internal energy ≈ cv·T·M ≈ 2e9 J/m².
        assert!(
            (1.5e9..3.0e9).contains(&b.internal),
            "internal {}",
            b.internal
        );
        assert!(b.potential > 0.0 && b.potential < b.internal);
        assert_eq!(b.kinetic_h, 0.0);
        assert_eq!(b.kinetic_w, 0.0);
    }

    #[test]
    fn kinetic_energy_appears_with_wind() {
        let mut s = solver();
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        for e in 0..s.mesh.n_edges() {
            for k in 0..10 {
                st.u.set(k, e, 10.0);
            }
        }
        let b = energy_budget(&mut s, &st);
        // K ≈ u²/2 · column mass ≈ 50 · 1.017e4 ≈ 5e5 J/m² (edge-normal
        // components only store part of the full |V|², so allow a band).
        assert!((1e5..2e6).contains(&b.kinetic_h), "KE {}", b.kinetic_h);
    }

    #[test]
    fn adiabatic_dynamics_conserves_total_energy_approximately() {
        let mut s = solver();
        let mut st = s.isothermal_rest_state(285.0, 1.0e5);
        // Zonal jet perturbation.
        for e in 0..s.mesh.n_edges() {
            let m = s.mesh.edge_mid[e];
            let zonal = grist_mesh::Vec3::new(0.0, 0.0, 1.0).cross(m);
            for k in 0..10 {
                st.u.set(
                    k,
                    e,
                    15.0 * m.lat().cos() * zonal.dot(s.mesh.edge_normal[e]),
                );
            }
        }
        let b0 = energy_budget(&mut s, &st);
        for _ in 0..30 {
            s.step(&mut st, 120.0);
        }
        let b1 = energy_budget(&mut s, &st);
        let drift = b1.drift_from(&b0).abs();
        // Total energy (dominated by internal+potential ~3e9) must drift
        // far less than the kinetic content (~1e5) it could spuriously
        // create or destroy.
        assert!(drift < 1e-4, "total energy drift {drift}");
        // Mass and water exactly conserved.
        assert!(((b1.mass - b0.mass) / b0.mass).abs() < 1e-12);
        assert!(
            ((b1.water - b0.water) / b0.water).abs() < 1e-9,
            "water drift"
        );
    }

    #[test]
    fn heating_increases_internal_energy() {
        let mut s = solver();
        let st0 = s.isothermal_rest_state(280.0, 1.0e5);
        let mut st1 = st0.clone();
        for c in 0..s.mesh.n_cells() {
            for k in 0..10 {
                let dpi = st1.dpi.at(k, c);
                let th = st1.theta_m.at(k, c) / dpi;
                st1.theta_m.set(k, c, dpi * (th + 1.0));
            }
        }
        let b0 = energy_budget(&mut s, &st0);
        let b1 = energy_budget(&mut s, &st1);
        assert!(b1.internal > b0.internal);
    }
}
