//! Physical and planetary constants shared by the dynamical core and the
//! physics suites. Values follow the conventional dry-air atmosphere setup
//! used by GRIST-class models.

/// Earth radius \[m\].
pub const REARTH: f64 = 6.371e6;
/// Earth rotation rate \[rad/s\].
pub const OMEGA: f64 = 7.292e-5;
/// Gravitational acceleration \[m/s²\].
pub const GRAVITY: f64 = 9.80616;
/// Gas constant of dry air \[J/(kg·K)\].
pub const RDRY: f64 = 287.04;
/// Gas constant of water vapour \[J/(kg·K)\].
pub const RVAP: f64 = 461.5;
/// Specific heat of dry air at constant pressure \[J/(kg·K)\].
pub const CP: f64 = 1004.64;
/// Specific heat of dry air at constant volume \[J/(kg·K)\].
pub const CV: f64 = CP - RDRY;
/// Reference pressure for the Exner function \[Pa\].
pub const P0: f64 = 1.0e5;
/// R/cp.
pub const KAPPA: f64 = RDRY / CP;
/// Latent heat of vaporization \[J/kg\].
pub const LVAP: f64 = 2.501e6;
/// Model-top pressure used by all the paper's configurations (§4.4) \[Pa\]:
/// 2.25 hPa, ~40 km.
pub const P_TOP: f64 = 225.0;
/// Reference surface pressure \[Pa\].
pub const PS_REF: f64 = 1.0e5;
/// Stefan–Boltzmann constant \[W/(m²·K⁴)\].
pub const STEFAN_BOLTZMANN: f64 = 5.670374e-8;
/// Solar constant \[W/m²\].
pub const SOLAR_CONSTANT: f64 = 1361.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_constants_consistent() {
        assert!((KAPPA - 2.0 / 7.0).abs() < 2e-3);
        assert!((CV - 717.6).abs() < 0.1);
    }

    #[test]
    fn model_top_matches_paper() {
        assert_eq!(P_TOP, 225.0); // 2.25 hPa
    }
}
