//! Horizontal diffusion operators: Laplacian and ∇⁴ hyperdiffusion on the
//! hexagonal C-grid, for both cell scalars and edge-normal velocity.
//!
//! Every GRIST-class dycore carries scale-selective ∇⁴ dissipation to remove
//! grid-scale enstrophy; it is also a textbook >4-array kernel (in, lap,
//! out, geometry streams), i.e. another LDCache-thrashing candidate for the
//! Fig. 6 address distributor.

use crate::field::Field2;
use crate::operators::ScaledGeometry;
use crate::real::Real;
use grist_mesh::HexMesh;
use sunway_sim::{ColumnsMut, Substrate};

/// Cell-scalar Laplacian: `∇²h|_i = (1/A_i) Σ_e s(i,e) ℓ_e (h_nb − h_i)/d_e`.
pub fn laplacian_cell<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    h: &Field2<R>,
    out: &mut Field2<R>,
) {
    let nlev = h.nlev();
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    sub.run("laplacian_cell", cols.len(), |c| {
        // SAFETY: each cell index is dispatched exactly once.
        let col = unsafe { cols.col(c) };
        col.fill(R::ZERO);
        let own = h.col(c);
        for (&e, &nb) in mesh
            .cell_edges
            .row(c)
            .iter()
            .zip(mesh.cell_neighbors.row(c))
        {
            let w = geom.edge_le[e as usize] * geom.inv_edge_de[e as usize];
            let nbc = h.col(nb as usize);
            for (o, (&hn, &hi)) in col.iter_mut().zip(nbc.iter().zip(own)) {
                *o += w * (hn - hi);
            }
        }
        let ia = geom.inv_cell_area[c];
        for o in col.iter_mut() {
            *o *= ia;
        }
    });
}

/// Edge-velocity "Laplacian" via the vector identity
/// `∇²V = ∇(∇·V) − ∇×(∇×V)`, projected on the edge normal.
pub fn laplacian_edge<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u: &Field2<R>,
    div_scratch: &mut Field2<R>,
    vor_scratch: &mut Field2<R>,
    out: &mut Field2<R>,
) {
    let nlev = u.nlev();
    crate::operators::divergence(sub, mesh, geom, u, div_scratch);
    crate::operators::vorticity(sub, mesh, geom, u, vor_scratch);
    let div_scratch = &*div_scratch;
    let vor_scratch = &*vor_scratch;
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    sub.run("laplacian_edge", cols.len(), |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [c1, c2] = mesh.edge_cells[e];
        let [v1, v2] = mesh.edge_verts[e];
        let inv_de = geom.inv_edge_de[e];
        // ℓ_e-based tangential spacing between the two dual vertices.
        let inv_le = R::ONE / geom.edge_le[e];
        let (d1, d2) = (div_scratch.col(c1 as usize), div_scratch.col(c2 as usize));
        let (z1, z2) = (vor_scratch.col(v1 as usize), vor_scratch.col(v2 as usize));
        for k in 0..nlev {
            let grad_div = (d2[k] - d1[k]) * inv_de;
            let curl_vor = (z2[k] - z1[k]) * inv_le;
            col[k] = grad_div - curl_vor;
        }
    });
}

/// Scale-selective ∇⁴ hyperdiffusion tendency for a cell scalar:
/// `∂h/∂t = −ν₄ ∇⁴ h`, applied as two Laplacian sweeps. `nu4` in m⁴/s.
#[allow(clippy::too_many_arguments)]
pub fn hyperdiffuse_cell<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    h: &mut Field2<R>,
    nu4: f64,
    dt: f64,
    lap1: &mut Field2<R>,
    lap2: &mut Field2<R>,
) {
    laplacian_cell(sub, mesh, geom, h, lap1);
    laplacian_cell(sub, mesh, geom, lap1, lap2);
    let coef = R::from_f64(-nu4 * dt);
    h.axpy(coef, lap2);
}

/// The maximum stable ν₄ for an explicit step on this mesh:
/// `ν₄ < Δx⁴ / (32 Δt)` with Δx the minimum dual-edge spacing.
pub fn max_stable_nu4(mesh: &HexMesh, rearth: f64, dt: f64) -> f64 {
    let min_de = mesh.edge_de.iter().cloned().fold(f64::INFINITY, f64::min) * rearth;
    min_de.powi(4) / (32.0 * dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grist_mesh::{EARTH_OMEGA, EARTH_RADIUS_M};

    fn sub() -> Substrate {
        Substrate::serial()
    }

    fn setup(level: u32) -> (HexMesh, ScaledGeometry<f64>) {
        let mesh = HexMesh::build(level);
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        (mesh, geom)
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let (mesh, geom) = setup(3);
        let h = Field2::constant(2, mesh.n_cells(), 42.0);
        let mut l = Field2::constant(2, mesh.n_cells(), 9.0);
        laplacian_cell(&sub(), &mesh, &geom, &h, &mut l);
        let max = l.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max < 1e-12, "∇²const = {max}");
    }

    #[test]
    fn laplacian_integral_vanishes() {
        // Σ A_i ∇²h = 0 exactly (flux form telescopes).
        let (mesh, geom) = setup(3);
        let h = Field2::from_fn(1, mesh.n_cells(), |_, c| (c % 23) as f64);
        let mut l = Field2::zeros(1, mesh.n_cells());
        laplacian_cell(&sub(), &mesh, &geom, &h, &mut l);
        let total: f64 = (0..mesh.n_cells())
            .map(|c| l.at(0, c) * mesh.cell_area[c])
            .sum();
        assert!(total.abs() < 1e-16, "∮∇²h = {total}");
    }

    #[test]
    fn laplacian_of_spherical_harmonic_is_eigenfunction() {
        // ∇² Y₁ = −l(l+1)/R² Y₁ with Y₁ ∝ z: eigenvalue −2/R².
        let (mesh, geom) = setup(5);
        let h = Field2::from_fn(1, mesh.n_cells(), |_, c| mesh.cell_xyz[c].z);
        let mut l = Field2::zeros(1, mesh.n_cells());
        laplacian_cell(&sub(), &mesh, &geom, &h, &mut l);
        let eig = -2.0 / (EARTH_RADIUS_M * EARTH_RADIUS_M);
        let mut rel = 0.0;
        let mut n = 0;
        for c in 0..mesh.n_cells() {
            let z = mesh.cell_xyz[c].z;
            if z.abs() > 0.3 {
                rel += (l.at(0, c) / (eig * z) - 1.0).abs();
                n += 1;
            }
        }
        let mean_rel = rel / n as f64;
        assert!(mean_rel < 0.05, "mean eigenvalue error {mean_rel}");
    }

    #[test]
    fn hyperdiffusion_damps_grid_noise_faster_than_smooth_modes() {
        let (mesh, geom) = setup(4);
        let dt = 300.0;
        let nu4 = 0.5 * max_stable_nu4(&mesh, EARTH_RADIUS_M, dt);
        // Smooth mode (Y₁) and checkerboard-ish noise.
        let smooth0 = Field2::from_fn(1, mesh.n_cells(), |_, c| mesh.cell_xyz[c].z);
        let noise0 = Field2::from_fn(
            1,
            mesh.n_cells(),
            |_, c| if c % 2 == 0 { 1.0 } else { -1.0 },
        );
        let mut smooth = smooth0.clone();
        let mut noise = noise0.clone();
        let mut l1 = Field2::zeros(1, mesh.n_cells());
        let mut l2 = Field2::zeros(1, mesh.n_cells());
        for _ in 0..5 {
            hyperdiffuse_cell(&sub(), &mesh, &geom, &mut smooth, nu4, dt, &mut l1, &mut l2);
            hyperdiffuse_cell(&sub(), &mesh, &geom, &mut noise, nu4, dt, &mut l1, &mut l2);
        }
        let norm = |a: &Field2<f64>, b: &Field2<f64>| -> f64 {
            let na: f64 = a.as_slice().iter().map(|x| x * x).sum();
            let nb: f64 = b.as_slice().iter().map(|x| x * x).sum();
            (na / nb).sqrt()
        };
        let smooth_kept = norm(&smooth, &smooth0);
        let noise_kept = norm(&noise, &noise0);
        assert!(
            smooth_kept > 0.98,
            "smooth mode over-damped: kept {smooth_kept}"
        );
        assert!(
            noise_kept < 0.7 * smooth_kept,
            "noise under-damped: kept {noise_kept}"
        );
    }

    #[test]
    fn hyperdiffusion_is_stable_at_the_cfl_bound() {
        let (mesh, geom) = setup(3);
        let dt = 600.0;
        let nu4 = 0.9 * max_stable_nu4(&mesh, EARTH_RADIUS_M, dt);
        let mut h = Field2::from_fn(
            1,
            mesh.n_cells(),
            |_, c| if c % 2 == 0 { 1.0 } else { -1.0 },
        );
        let mut l1 = Field2::zeros(1, mesh.n_cells());
        let mut l2 = Field2::zeros(1, mesh.n_cells());
        let n0: f64 = h.as_slice().iter().map(|x| x * x).sum();
        for _ in 0..50 {
            hyperdiffuse_cell(&sub(), &mesh, &geom, &mut h, nu4, dt, &mut l1, &mut l2);
        }
        let n1: f64 = h.as_slice().iter().map(|x| x * x).sum();
        assert!(
            n1.is_finite() && n1 <= n0,
            "hyperdiffusion unstable: {n0} -> {n1}"
        );
    }

    #[test]
    fn edge_laplacian_damps_divergent_and_rotational_noise() {
        let (mesh, geom) = setup(3);
        let nlev = 1;
        let u = Field2::from_fn(
            nlev,
            mesh.n_edges(),
            |_, e| if e % 2 == 0 { 1.0 } else { -1.0 },
        );
        let mut div = Field2::zeros(nlev, mesh.n_cells());
        let mut vor = Field2::zeros(nlev, mesh.n_verts());
        let mut lap = Field2::zeros(nlev, mesh.n_edges());
        laplacian_edge(&sub(), &mesh, &geom, &u, &mut div, &mut vor, &mut lap);
        // Applying u += dt·∇²u must reduce the noise norm for small dt.
        let dx = mesh.edge_de.iter().cloned().fold(f64::INFINITY, f64::min) * EARTH_RADIUS_M;
        let dt = 0.1 * dx * dx / 4.0; // well under the diffusive CFL with ν=1
        let mut u2 = u.clone();
        u2.axpy(dt * 1.0, &lap);
        let n0: f64 = u.as_slice().iter().map(|x| x * x).sum();
        let n1: f64 = u2.as_slice().iter().map(|x| x * x).sum();
        assert!(n1 < n0, "edge Laplacian failed to damp noise: {n0} -> {n1}");
    }
}
