//! Field containers for the staggered C-grid.
//!
//! Horizontal location is encoded by which mesh count the field is sized to
//! (cells, edges, or dual vertices); all fields carry `nlev` vertical layers
//! stored level-fastest — matching the Fortran `(ilev, ie)` loop order of the
//! paper's kernels (Fig. 4), which is also the layout the LDCache model and
//! vertical (columnar) solvers want.

use crate::real::Real;

/// A 2-D field: `nlev` vertical layers × `ncols` horizontal locations,
/// level-fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Field2<R: Real> {
    nlev: usize,
    ncols: usize,
    data: Vec<R>,
}

impl<R: Real> Field2<R> {
    pub fn zeros(nlev: usize, ncols: usize) -> Self {
        Field2 {
            nlev,
            ncols,
            data: vec![R::ZERO; nlev * ncols],
        }
    }

    pub fn constant(nlev: usize, ncols: usize, v: R) -> Self {
        Field2 {
            nlev,
            ncols,
            data: vec![v; nlev * ncols],
        }
    }

    /// Build from a per-(level, column) closure.
    pub fn from_fn(nlev: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> R) -> Self {
        let mut data = Vec::with_capacity(nlev * ncols);
        for col in 0..ncols {
            for lev in 0..nlev {
                data.push(f(lev, col));
            }
        }
        Field2 { nlev, ncols, data }
    }

    #[inline]
    pub fn nlev(&self) -> usize {
        self.nlev
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn at(&self, lev: usize, col: usize) -> R {
        debug_assert!(lev < self.nlev && col < self.ncols);
        self.data[col * self.nlev + lev]
    }

    #[inline]
    pub fn at_mut(&mut self, lev: usize, col: usize) -> &mut R {
        debug_assert!(lev < self.nlev && col < self.ncols);
        &mut self.data[col * self.nlev + lev]
    }

    #[inline]
    pub fn set(&mut self, lev: usize, col: usize, v: R) {
        *self.at_mut(lev, col) = v;
    }

    /// The whole column at horizontal location `col`.
    #[inline]
    pub fn col(&self, col: usize) -> &[R] {
        &self.data[col * self.nlev..(col + 1) * self.nlev]
    }

    #[inline]
    pub fn col_mut(&mut self, col: usize) -> &mut [R] {
        &mut self.data[col * self.nlev..(col + 1) * self.nlev]
    }

    pub fn as_slice(&self) -> &[R] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [R] {
        &mut self.data
    }

    pub fn fill(&mut self, v: R) {
        self.data.fill(v);
    }

    /// `self += other * scale` — the fused update used by RK accumulation.
    pub fn axpy(&mut self, scale: R, other: &Field2<R>) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = b.mul_add(scale, *a);
        }
    }

    /// Copy values from `other` (must have identical shape).
    pub fn copy_from(&mut self, other: &Field2<R>) {
        assert_eq!(self.nlev, other.nlev);
        assert_eq!(self.ncols, other.ncols);
        self.data.copy_from_slice(&other.data);
    }

    /// Convert to another precision (initialization-time cast of §3.4.3).
    pub fn cast<S: Real>(&self) -> Field2<S> {
        Field2 {
            nlev: self.nlev,
            ncols: self.ncols,
            data: self.data.iter().map(|&x| S::from_f64(x.to_f64())).collect(),
        }
    }

    /// Lossless view as f64 for diagnostics.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|x| x.to_f64()).collect()
    }

    /// Split into per-column mutable chunks for parallel columnar work.
    pub fn par_columns_mut(&mut self) -> std::slice::ChunksMut<'_, R> {
        self.data.chunks_mut(self.nlev)
    }

    pub fn min_value(&self) -> R {
        self.data
            .iter()
            .copied()
            .fold(self.data[0], |a, b| a.min(b))
    }

    pub fn max_value(&self) -> R {
        self.data
            .iter()
            .copied()
            .fold(self.data[0], |a, b| a.max(b))
    }
}

/// A single-level horizontal field (e.g. surface pressure).
#[derive(Debug, Clone, PartialEq)]
pub struct Field1<R: Real> {
    pub data: Vec<R>,
}

impl<R: Real> Field1<R> {
    pub fn zeros(n: usize) -> Self {
        Field1 {
            data: vec![R::ZERO; n],
        }
    }
    pub fn constant(n: usize, v: R) -> Self {
        Field1 { data: vec![v; n] }
    }
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.data.iter().map(|x| x.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_level_fastest() {
        let f = Field2::<f64>::from_fn(3, 4, |lev, col| (col * 10 + lev) as f64);
        assert_eq!(f.as_slice()[0], 0.0); // col 0, lev 0
        assert_eq!(f.as_slice()[1], 1.0); // col 0, lev 1
        assert_eq!(f.as_slice()[3], 10.0); // col 1, lev 0
        assert_eq!(f.at(2, 3), 32.0);
    }

    #[test]
    fn column_views_are_contiguous() {
        let f = Field2::<f32>::from_fn(4, 3, |lev, col| (col * 100 + lev) as f32);
        assert_eq!(f.col(2), &[200.0, 201.0, 202.0, 203.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Field2::<f64>::constant(2, 2, 1.0);
        let b = Field2::<f64>::constant(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| (x - 2.5).abs() < 1e-15));
    }

    #[test]
    fn cast_roundtrip_f64_f32() {
        let f = Field2::<f64>::from_fn(2, 2, |l, c| 1.0 + (l + c) as f64 * 0.25);
        let g: Field2<f32> = f.cast();
        let h: Field2<f64> = g.cast();
        // exact: quarter-values representable in f32
        assert_eq!(f, h);
    }

    #[test]
    fn minmax() {
        let f = Field2::<f64>::from_fn(2, 3, |l, c| (l as f64) - (c as f64));
        assert_eq!(f.min_value(), -2.0);
        assert_eq!(f.max_value(), 1.0);
    }
}
