//! Discrete finite-volume operators on the hexagonal C-grid (§3.1.2):
//! divergence, gradient, vorticity, kinetic energy, tangential-velocity
//! reconstruction, and staggering averages. "The discretization employs the
//! staggered finite-volume method, approximately second-order, leading to
//! moderate computational load for basic operators."
//!
//! All operators are generic over the [`Real`] precision and read their
//! metric terms from a [`ScaledGeometry`] pre-cast to that precision, so the
//! mixed-precision build streams 4-byte geometry exactly as the Sunway port
//! does after its initialization-time conversion (§3.4.3).

use crate::field::Field2;
use crate::real::Real;
use grist_mesh::{HexMesh, Vec3};
use sunway_sim::{ColumnsMut, Substrate};

/// Physical metric terms cast to the working precision `R`.
///
/// Lengths are in metres, areas in m²; inverse quantities are precomputed
/// because divisions dominate edge kernels on the CPE side (§4.6).
#[derive(Debug, Clone)]
pub struct ScaledGeometry<R: Real> {
    pub rearth: f64,
    /// 1 / (cell area · R²)  [1/m²]
    pub inv_cell_area: Vec<R>,
    /// 1 / (dual-triangle area · R²)  [1/m²]
    pub inv_vert_area: Vec<R>,
    /// Primal edge length · R  \[m\]
    pub edge_le: Vec<R>,
    /// Dual edge length · R  \[m\]
    pub edge_de: Vec<R>,
    /// 1 / (dual edge length · R)  [1/m]
    pub inv_edge_de: Vec<R>,
    /// le · de / 4  \[m²\] — kinetic-energy weight per edge.
    pub ke_weight: Vec<R>,
    /// Coriolis parameter at dual vertices  [1/s]
    pub f_vert: Vec<R>,
    /// Coriolis parameter at edge midpoints  [1/s]
    pub f_edge: Vec<R>,
    /// `cell_edge_sign` cast to R (aligned with `mesh.cell_edges.values`).
    pub cell_edge_sign: Vec<R>,
    /// `vert_edge_sign` cast to R.
    pub vert_edge_sign: Vec<[R; 3]>,
    /// Per-vertex 2×2 least-squares reconstruction matrices (inverted),
    /// in the local (east, north) tangent frame of the vertex, plus each
    /// incident edge normal expressed in that frame.
    pub vert_recon: Vec<VertRecon<R>>,
    /// Edge tangent expressed in the (east, north) frame of each adjacent
    /// vertex is not needed; reconstruction returns an (e, n) vector that is
    /// projected on the edge tangent via these per-edge tangent components
    /// in the *edge's own* frame... (see `tangential_velocity`).
    pub edge_tangent_en: Vec<[R; 2]>,
    /// Edge normal in the edge's own (east, north) frame (unused by solvers,
    /// kept for diagnostics).
    pub edge_normal_en: Vec<[R; 2]>,
}

/// Per-dual-vertex data for least-squares velocity reconstruction.
#[derive(Debug, Clone, Copy)]
pub struct VertRecon<R: Real> {
    /// Inverse of the 2×2 normal-equation matrix `Σ nₖ nₖᵀ`.
    pub minv: [[R; 2]; 2],
    /// The three incident edge normals in the vertex (east, north) frame,
    /// ordered like `mesh.vert_edges[v]`.
    pub normals: [[R; 2]; 3],
}

impl<R: Real> ScaledGeometry<R> {
    pub fn new(mesh: &HexMesh, rearth: f64, omega: f64) -> Self {
        let r = rearth;
        let cast = |x: f64| R::from_f64(x);
        let inv_cell_area = mesh
            .cell_area
            .iter()
            .map(|&a| cast(1.0 / (a * r * r)))
            .collect();
        let inv_vert_area = mesh
            .vert_area
            .iter()
            .map(|&a| cast(1.0 / (a * r * r)))
            .collect();
        let edge_le: Vec<R> = mesh.edge_le.iter().map(|&l| cast(l * r)).collect();
        let edge_de: Vec<R> = mesh.edge_de.iter().map(|&l| cast(l * r)).collect();
        let inv_edge_de = mesh.edge_de.iter().map(|&l| cast(1.0 / (l * r))).collect();
        let ke_weight = mesh
            .edge_le
            .iter()
            .zip(&mesh.edge_de)
            .map(|(&le, &de)| cast(le * de * r * r / 4.0))
            .collect();
        let f_vert = mesh
            .coriolis_at_verts(omega)
            .into_iter()
            .map(cast)
            .collect();
        let f_edge = mesh
            .coriolis_at_edges(omega)
            .into_iter()
            .map(cast)
            .collect();
        let cell_edge_sign = mesh.cell_edge_sign.iter().map(|&s| cast(s)).collect();
        let vert_edge_sign = mesh
            .vert_edge_sign
            .iter()
            .map(|s| [cast(s[0]), cast(s[1]), cast(s[2])])
            .collect();

        // Per-vertex least-squares reconstruction.
        let mut vert_recon = Vec::with_capacity(mesh.n_verts());
        for v in 0..mesh.n_verts() {
            let p = mesh.vert_xyz[v];
            let (e_hat, n_hat) = (p.east(), p.north());
            let mut m = [[0.0f64; 2]; 2];
            let mut normals = [[R::ZERO; 2]; 3];
            for (k, &e) in mesh.vert_edges[v].iter().enumerate() {
                let n: Vec3 = mesh.edge_normal[e as usize].tangent_at(p);
                let ne = n.dot(e_hat);
                let nn = n.dot(n_hat);
                normals[k] = [cast(ne), cast(nn)];
                m[0][0] += ne * ne;
                m[0][1] += ne * nn;
                m[1][0] += nn * ne;
                m[1][1] += nn * nn;
            }
            let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
            debug_assert!(det.abs() > 1e-12, "degenerate reconstruction at vertex {v}");
            let minv = [
                [cast(m[1][1] / det), cast(-m[0][1] / det)],
                [cast(-m[1][0] / det), cast(m[0][0] / det)],
            ];
            vert_recon.push(VertRecon { minv, normals });
        }

        // Edge tangent/normal in per-edge (east, north) frames.
        let mut edge_tangent_en = Vec::with_capacity(mesh.n_edges());
        let mut edge_normal_en = Vec::with_capacity(mesh.n_edges());
        for e in 0..mesh.n_edges() {
            let m = mesh.edge_mid[e];
            let (e_hat, n_hat) = (m.east(), m.north());
            let t = mesh.edge_tangent[e];
            let n = mesh.edge_normal[e];
            edge_tangent_en.push([cast(t.dot(e_hat)), cast(t.dot(n_hat))]);
            edge_normal_en.push([cast(n.dot(e_hat)), cast(n.dot(n_hat))]);
        }

        ScaledGeometry {
            rearth,
            inv_cell_area,
            inv_vert_area,
            edge_le,
            edge_de,
            inv_edge_de,
            ke_weight,
            f_vert,
            f_edge,
            cell_edge_sign,
            vert_edge_sign,
            vert_recon,
            edge_tangent_en,
            edge_normal_en,
        }
    }
}

/// Dispatch `body` over either the full `0..n_full` range (`subset: None`)
/// or an explicit index list, under the same kernel name — the index-subset
/// machinery behind the interior/halo phase split. Per-index arithmetic is
/// identical in both modes, so running an operator over a partition of the
/// index space (interior first, remainder later) produces bitwise the same
/// output as one full dispatch.
///
/// Callers restricted to a subset must pass unique indices: the operator
/// bodies write through [`ColumnsMut`] under the "each index dispatched
/// exactly once" contract.
pub fn run_on<F: Fn(usize) + Sync>(
    sub: &Substrate,
    name: &'static str,
    n_full: usize,
    subset: Option<&[u32]>,
    body: F,
) {
    match subset {
        None => sub.run(name, n_full, body),
        Some(ix) => sub.run(name, ix.len(), |j| body(ix[j] as usize)),
    }
}

/// Divergence of an edge-normal flux field, at cells:
/// `div_i = (1/A_i) Σ_e s(i,e) F_e le_e`.
pub fn divergence<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    flux_edge: &Field2<R>,
    out: &mut Field2<R>,
) {
    divergence_on(sub, mesh, geom, flux_edge, out, None);
}

/// [`divergence`] restricted to a cell subset (`None` = all cells).
pub fn divergence_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    flux_edge: &Field2<R>,
    out: &mut Field2<R>,
    cells: Option<&[u32]>,
) {
    let nlev = flux_edge.nlev();
    debug_assert_eq!(out.nlev(), nlev);
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "divergence", cols.len(), cells, |c| {
        // SAFETY: each cell index is dispatched exactly once.
        let col = unsafe { cols.col(c) };
        col.fill(R::ZERO);
        let rng = mesh.cell_edges.row_range(c);
        for (k, &e) in mesh.cell_edges.row(c).iter().enumerate() {
            let w = geom.cell_edge_sign[rng.start + k] * geom.edge_le[e as usize];
            let fe = flux_edge.col(e as usize);
            for (o, &f) in col.iter_mut().zip(fe) {
                *o = f.mul_add(w, *o);
            }
        }
        let ia = geom.inv_cell_area[c];
        for o in col.iter_mut() {
            *o *= ia;
        }
    });
}

/// Normal gradient of a cell scalar, at edges:
/// `grad_e = (h_{c2} − h_{c1}) / de_e`.
pub fn gradient<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    h_cell: &Field2<R>,
    out: &mut Field2<R>,
) {
    gradient_on(sub, mesh, geom, h_cell, out, None);
}

/// [`gradient`] restricted to an edge subset (`None` = all edges).
pub fn gradient_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    h_cell: &Field2<R>,
    out: &mut Field2<R>,
    edges: Option<&[u32]>,
) {
    let nlev = h_cell.nlev();
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "gradient", cols.len(), edges, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [c1, c2] = mesh.edge_cells[e];
        let a = h_cell.col(c1 as usize);
        let b = h_cell.col(c2 as usize);
        let inv_de = geom.inv_edge_de[e];
        for (o, (&x1, &x2)) in col.iter_mut().zip(a.iter().zip(b)) {
            *o = (x2 - x1) * inv_de;
        }
    });
}

/// Relative vorticity at dual vertices:
/// `ζ_v = (1/A_v) Σ_e t(v,e) u_e de_e`.
pub fn vorticity<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out: &mut Field2<R>,
) {
    vorticity_on(sub, mesh, geom, u_edge, out, None);
}

/// [`vorticity`] restricted to a vertex subset (`None` = all vertices).
pub fn vorticity_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out: &mut Field2<R>,
    verts: Option<&[u32]>,
) {
    let nlev = u_edge.nlev();
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "vorticity", cols.len(), verts, |v| {
        // SAFETY: each vertex index is dispatched exactly once.
        let col = unsafe { cols.col(v) };
        col.fill(R::ZERO);
        for k in 0..3 {
            let e = mesh.vert_edges[v][k] as usize;
            let w = geom.vert_edge_sign[v][k] * geom.edge_de[e];
            let ue = u_edge.col(e);
            for (o, &u) in col.iter_mut().zip(ue) {
                *o = u.mul_add(w, *o);
            }
        }
        let ia = geom.inv_vert_area[v];
        for o in col.iter_mut() {
            *o *= ia;
        }
    });
}

/// Kinetic energy per unit mass at cells:
/// `K_i = (1/A_i) Σ_e (le·de/4) u_e²`.
pub fn kinetic_energy<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out: &mut Field2<R>,
) {
    kinetic_energy_on(sub, mesh, geom, u_edge, out, None);
}

/// [`kinetic_energy`] restricted to a cell subset (`None` = all cells).
pub fn kinetic_energy_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out: &mut Field2<R>,
    cells: Option<&[u32]>,
) {
    let nlev = u_edge.nlev();
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "kinetic_energy", cols.len(), cells, |c| {
        // SAFETY: each cell index is dispatched exactly once.
        let col = unsafe { cols.col(c) };
        col.fill(R::ZERO);
        for &e in mesh.cell_edges.row(c) {
            let w = geom.ke_weight[e as usize];
            let ue = u_edge.col(e as usize);
            for (o, &u) in col.iter_mut().zip(ue) {
                *o += w * u * u;
            }
        }
        let ia = geom.inv_cell_area[c];
        for o in col.iter_mut() {
            *o *= ia;
        }
    });
}

/// Centered cell→edge average: `h_e = (h_{c1} + h_{c2}) / 2`.
pub fn cell_to_edge<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    h_cell: &Field2<R>,
    out: &mut Field2<R>,
) {
    cell_to_edge_on(sub, mesh, h_cell, out, None);
}

/// [`cell_to_edge`] restricted to an edge subset (`None` = all edges).
pub fn cell_to_edge_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    h_cell: &Field2<R>,
    out: &mut Field2<R>,
    edges: Option<&[u32]>,
) {
    let nlev = h_cell.nlev();
    let half = R::from_f64(0.5);
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "cell_to_edge", cols.len(), edges, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [c1, c2] = mesh.edge_cells[e];
        let a = h_cell.col(c1 as usize);
        let b = h_cell.col(c2 as usize);
        for (o, (&x1, &x2)) in col.iter_mut().zip(a.iter().zip(b)) {
            *o = (x1 + x2) * half;
        }
    });
}

/// Vertex→edge average of a dual field.
pub fn vert_to_edge<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    f_vert: &Field2<R>,
    out: &mut Field2<R>,
) {
    vert_to_edge_on(sub, mesh, f_vert, out, None);
}

/// [`vert_to_edge`] restricted to an edge subset (`None` = all edges).
pub fn vert_to_edge_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    f_vert: &Field2<R>,
    out: &mut Field2<R>,
    edges: Option<&[u32]>,
) {
    let nlev = f_vert.nlev();
    let half = R::from_f64(0.5);
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "vert_to_edge", cols.len(), edges, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [v1, v2] = mesh.edge_verts[e];
        let a = f_vert.col(v1 as usize);
        let b = f_vert.col(v2 as usize);
        for (o, (&x1, &x2)) in col.iter_mut().zip(a.iter().zip(b)) {
            *o = (x1 + x2) * half;
        }
    });
}

/// Full (east, north) velocity vectors reconstructed at dual vertices from
/// the three incident edge-normal components, by 2×2 least squares.
pub fn vert_velocity<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out_e: &mut Field2<R>,
    out_n: &mut Field2<R>,
) {
    vert_velocity_on(sub, mesh, geom, u_edge, out_e, out_n, None);
}

/// [`vert_velocity`] restricted to a vertex subset (`None` = all vertices).
#[allow(clippy::too_many_arguments)]
pub fn vert_velocity_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u_edge: &Field2<R>,
    out_e: &mut Field2<R>,
    out_n: &mut Field2<R>,
    verts: Option<&[u32]>,
) {
    let nlev = u_edge.nlev();
    let cols_e = ColumnsMut::new(out_e.as_mut_slice(), nlev);
    let cols_n = ColumnsMut::new(out_n.as_mut_slice(), nlev);
    run_on(sub, "vert_velocity", cols_e.len(), verts, |v| {
        // SAFETY: each vertex index is dispatched exactly once.
        let ce = unsafe { cols_e.col(v) };
        let cn = unsafe { cols_n.col(v) };
        let rc = &geom.vert_recon[v];
        for lev in 0..nlev {
            let mut be = R::ZERO;
            let mut bn = R::ZERO;
            for k in 0..3 {
                let u = u_edge.at(lev, mesh.vert_edges[v][k] as usize);
                be = u.mul_add(rc.normals[k][0], be);
                bn = u.mul_add(rc.normals[k][1], bn);
            }
            ce[lev] = rc.minv[0][0] * be + rc.minv[0][1] * bn;
            cn[lev] = rc.minv[1][0] * be + rc.minv[1][1] * bn;
        }
    });
}

/// Tangential velocity at edges, from the two adjacent vertex
/// reconstructions. This stands in for GRIST/TRSK's weighted perp operator;
/// it is local, second-order on quasi-uniform meshes, and exercises the same
/// indirect-access pattern.
pub fn tangential_velocity<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    vert_ve: &Field2<R>,
    vert_vn: &Field2<R>,
    out: &mut Field2<R>,
) {
    tangential_velocity_on(sub, mesh, geom, vert_ve, vert_vn, out, None);
}

/// [`tangential_velocity`] restricted to an edge subset (`None` = all).
#[allow(clippy::too_many_arguments)]
pub fn tangential_velocity_on<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    vert_ve: &Field2<R>,
    vert_vn: &Field2<R>,
    out: &mut Field2<R>,
    edges: Option<&[u32]>,
) {
    let nlev = vert_ve.nlev();
    let half = R::from_f64(0.5);
    let cols = ColumnsMut::new(out.as_mut_slice(), nlev);
    run_on(sub, "tangential_velocity", cols.len(), edges, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [v1, v2] = mesh.edge_verts[e];
        let [te, tn] = geom.edge_tangent_en[e];
        let (ae, an) = (vert_ve.col(v1 as usize), vert_vn.col(v1 as usize));
        let (be, bn) = (vert_ve.col(v2 as usize), vert_vn.col(v2 as usize));
        for lev in 0..nlev {
            let ve = (ae[lev] + be[lev]) * half;
            let vn = (an[lev] + bn[lev]) * half;
            col[lev] = ve * te + vn * tn;
        }
    });
}

/// Full (east, north) velocity vectors reconstructed at *cells* from the
/// incident edge-normal components by least squares — the cell-centred
/// (U, V) handed to the column physics (§3.2.4's coupling inputs).
pub fn cell_velocity<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    u_edge: &Field2<R>,
    out_e: &mut Field2<R>,
    out_n: &mut Field2<R>,
) {
    let nlev = u_edge.nlev();
    let cols_e = ColumnsMut::new(out_e.as_mut_slice(), nlev);
    let cols_n = ColumnsMut::new(out_n.as_mut_slice(), nlev);
    sub.run("cell_velocity", cols_e.len(), |c| {
        // SAFETY: each cell index is dispatched exactly once.
        let ce = unsafe { cols_e.col(c) };
        let cn = unsafe { cols_n.col(c) };
        {
            let p = mesh.cell_xyz[c];
            let (e_hat, n_hat) = (p.east(), p.north());
            // Normal equations of the per-cell least squares (f64 geometry,
            // assembled once per cell per call).
            let mut m = [[0.0f64; 2]; 2];
            let edges = mesh.cell_edges.row(c);
            let normals: Vec<[f64; 2]> = edges
                .iter()
                .map(|&e| {
                    let n = mesh.edge_normal[e as usize].tangent_at(p);
                    [n.dot(e_hat), n.dot(n_hat)]
                })
                .collect();
            for nrm in &normals {
                m[0][0] += nrm[0] * nrm[0];
                m[0][1] += nrm[0] * nrm[1];
                m[1][0] += nrm[1] * nrm[0];
                m[1][1] += nrm[1] * nrm[1];
            }
            let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
            let minv = [
                [m[1][1] / det, -m[0][1] / det],
                [-m[1][0] / det, m[0][0] / det],
            ];
            for lev in 0..nlev {
                let mut be = 0.0f64;
                let mut bn = 0.0f64;
                for (k, &e) in edges.iter().enumerate() {
                    let u = u_edge.at(lev, e as usize).to_f64();
                    be += u * normals[k][0];
                    bn += u * normals[k][1];
                }
                ce[lev] = R::from_f64(minv[0][0] * be + minv[0][1] * bn);
                cn[lev] = R::from_f64(minv[1][0] * be + minv[1][1] * bn);
            }
        }
    });
}

/// Area-weighted global mean of a cell field at one level (diagnostics).
pub fn global_mean<R: Real>(mesh: &HexMesh, f: &Field2<R>, lev: usize) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in 0..mesh.n_cells() {
        num += f.at(lev, c).to_f64() * mesh.cell_area[c];
        den += mesh.cell_area[c];
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use grist_mesh::{EARTH_OMEGA, EARTH_RADIUS_M};

    fn sub() -> Substrate {
        Substrate::serial()
    }

    fn setup(level: u32) -> (HexMesh, ScaledGeometry<f64>) {
        let mesh = HexMesh::build(level);
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        (mesh, geom)
    }

    /// Solid-body rotation normal velocity: `V = ω ẑ × (R m̂)`.
    fn solid_body_u(mesh: &HexMesh, omega: f64) -> Field2<f64> {
        Field2::from_fn(1, mesh.n_edges(), |_, e| {
            let m = mesh.edge_mid[e];
            let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * (omega * EARTH_RADIUS_M);
            v.dot(mesh.edge_normal[e])
        })
    }

    #[test]
    fn divergence_integral_vanishes_exactly() {
        // Σ A_i div_i telescopes to zero for any flux field.
        let (mesh, geom) = setup(3);
        let flux = Field2::from_fn(2, mesh.n_edges(), |lev, e| {
            ((e * 7 + lev) % 13) as f64 - 6.0
        });
        let mut div = Field2::zeros(2, mesh.n_cells());
        divergence(&sub(), &mesh, &geom, &flux, &mut div);
        for lev in 0..2 {
            let total: f64 = (0..mesh.n_cells())
                .map(|c| div.at(lev, c) * mesh.cell_area[c])
                .sum();
            // scaled by R²; compare against field magnitude
            assert!(total.abs() < 1e-18, "lev {lev}: ∮div = {total}");
        }
    }

    #[test]
    fn curl_of_gradient_is_machine_zero() {
        // The discrete vorticity of a discrete gradient telescopes around
        // each dual triangle.
        let (mesh, geom) = setup(3);
        let h = Field2::from_fn(1, mesh.n_cells(), |_, c| {
            let p = mesh.cell_xyz[c];
            p.z * p.z + 0.3 * p.x - 0.1 * p.y * p.z
        });
        let mut g = Field2::zeros(1, mesh.n_edges());
        gradient(&sub(), &mesh, &geom, &h, &mut g);
        let mut vor = Field2::zeros(1, mesh.n_verts());
        vorticity(&sub(), &mesh, &geom, &g, &mut vor);
        let max = vor.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let gmax = g.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(
            max < gmax * 1e-9,
            "max curl(grad) = {max}, max grad = {gmax}"
        );
    }

    #[test]
    fn solid_body_rotation_has_small_divergence() {
        let (mesh, geom) = setup(4);
        let u = solid_body_u(&mesh, 1e-5);
        let mut div = Field2::zeros(1, mesh.n_cells());
        divergence(&sub(), &mesh, &geom, &u, &mut div);
        // Scale: |u| ~ ωR ~ 64 m/s over cells of ~10^5 m → u/dx ~ 1e-3.
        let max = div.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(max < 2e-6, "max |div| = {max}");
    }

    #[test]
    fn solid_body_vorticity_converges_to_analytic() {
        // ζ = 2ω sin(lat); second-order mesh ⇒ error shrinks ≥ ~3x per level.
        let omega = 1e-5;
        let mut errs = Vec::new();
        for level in [3u32, 4] {
            let (mesh, geom) = setup(level);
            let u = solid_body_u(&mesh, omega);
            let mut vor = Field2::zeros(1, mesh.n_verts());
            vorticity(&sub(), &mesh, &geom, &u, &mut vor);
            let mut num = 0.0;
            let mut den = 0.0;
            for v in 0..mesh.n_verts() {
                let exact = 2.0 * omega * mesh.vert_xyz[v].lat().sin();
                let e = vor.at(0, v) - exact;
                num += e * e * mesh.vert_area[v];
                den += exact * exact * mesh.vert_area[v] + 1e-30;
            }
            errs.push((num / den).sqrt());
        }
        // Vorticity converges ~O(h) in L2 on unoptimized icosahedral grids
        // (pentagon neighbourhoods dominate the norm) — halving per level.
        assert!(
            errs[1] < errs[0] / 1.8,
            "vorticity errors {errs:?} not converging"
        );
        assert!(
            errs[0] < 0.05,
            "coarse-level vorticity error too large: {}",
            errs[0]
        );
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let (mesh, geom) = setup(3);
        let h = Field2::constant(3, mesh.n_cells(), 42.0);
        let mut g = Field2::constant(3, mesh.n_edges(), 1.0);
        gradient(&sub(), &mesh, &geom, &h, &mut g);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn kinetic_energy_of_solid_body_matches_analytic() {
        // K = u²/2 with u = ωR cos(lat).
        let (mesh, geom) = setup(5);
        let omega = 1e-5;
        let u = solid_body_u(&mesh, omega);
        let mut ke = Field2::zeros(1, mesh.n_cells());
        kinetic_energy(&sub(), &mesh, &geom, &u, &mut ke);
        let mut rel = 0.0f64;
        let mut n = 0;
        for c in 0..mesh.n_cells() {
            let lat = mesh.cell_xyz[c].lat();
            let exact = 0.5 * (omega * EARTH_RADIUS_M * lat.cos()).powi(2);
            if exact > 1.0 {
                rel += ((ke.at(0, c) - exact) / exact).abs();
                n += 1;
            }
        }
        let mean_rel = rel / n as f64;
        assert!(mean_rel < 0.05, "mean relative KE error {mean_rel}");
    }

    #[test]
    fn tangential_reconstruction_recovers_solid_body_flow() {
        let (mesh, geom) = setup(5);
        let omega = 1e-5;
        let u = solid_body_u(&mesh, omega);
        let mut ve = Field2::zeros(1, mesh.n_verts());
        let mut vn = Field2::zeros(1, mesh.n_verts());
        vert_velocity(&sub(), &mesh, &geom, &u, &mut ve, &mut vn);
        let mut vt = Field2::zeros(1, mesh.n_edges());
        tangential_velocity(&sub(), &mesh, &geom, &ve, &vn, &mut vt);
        let mut worst = 0.0f64;
        for e in 0..mesh.n_edges() {
            let m = mesh.edge_mid[e];
            let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * (omega * EARTH_RADIUS_M);
            let exact = v.dot(mesh.edge_tangent[e]);
            worst = worst.max((vt.at(0, e) - exact).abs());
        }
        let scale = omega * EARTH_RADIUS_M;
        assert!(
            worst < 0.02 * scale,
            "worst tangential error {worst} vs scale {scale}"
        );
    }

    #[test]
    fn cell_velocity_recovers_solid_body_flow() {
        let (mesh, _) = setup(4);
        let omega = 1e-5;
        let u = solid_body_u(&mesh, omega);
        let mut ue = Field2::zeros(1, mesh.n_cells());
        let mut un = Field2::zeros(1, mesh.n_cells());
        cell_velocity(&sub(), &mesh, &u, &mut ue, &mut un);
        let scale = omega * EARTH_RADIUS_M;
        let mut worst = 0.0f64;
        for c in 0..mesh.n_cells() {
            let p = mesh.cell_xyz[c];
            let v = Vec3::new(0.0, 0.0, 1.0).cross(p) * scale;
            let exact_e = v.dot(p.east());
            let exact_n = v.dot(p.north());
            worst = worst
                .max((ue.at(0, c) - exact_e).abs())
                .max((un.at(0, c) - exact_n).abs());
        }
        assert!(
            worst < 0.02 * scale,
            "worst cell-velocity error {worst} vs {scale}"
        );
    }

    #[test]
    fn cell_to_edge_preserves_constants() {
        let (mesh, _) = setup(3);
        let h = Field2::constant(2, mesh.n_cells(), 7.5);
        let mut he = Field2::zeros(2, mesh.n_edges());
        cell_to_edge(&sub(), &mesh, &h, &mut he);
        assert!(he.as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn operators_match_between_f32_and_f64_within_tolerance() {
        let (mesh, geom64) = setup(3);
        let geom32: ScaledGeometry<f32> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let h64 = Field2::<f64>::from_fn(4, mesh.n_cells(), |lev, c| {
            1000.0 + mesh.cell_xyz[c].z * 50.0 + lev as f64
        });
        let h32: Field2<f32> = h64.cast();
        let mut g64 = Field2::zeros(4, mesh.n_edges());
        let mut g32 = Field2::zeros(4, mesh.n_edges());
        gradient(&sub(), &mesh, &geom64, &h64, &mut g64);
        gradient(&sub(), &mesh, &geom32, &h32, &mut g32);
        let err = crate::real::relative_l2_error(&g32.to_f64_vec(), &g64.to_f64_vec());
        // f32 gradient of a ~1e3-magnitude field over ~1e5 m edges loses some
        // digits to cancellation but stays far below the 5% gate.
        assert!(err < 1e-3, "f32/f64 gradient deviation {err}");
    }
}
