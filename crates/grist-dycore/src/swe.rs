//! Shallow-water mode of the dynamical core.
//!
//! The rotating shallow-water equations in vector-invariant form are the
//! classical proving ground for a C-grid operator set (GRIST's own baseline
//! evaluation does the same [Zhang et al. 2019]). The solver exercises every
//! horizontal operator of the 3-D core — divergence, gradient, vorticity,
//! kinetic energy, tangential reconstruction, nonlinear Coriolis — and is
//! validated on Williamson test case 2 (steady geostrophic flow).
//!
//! Equations (h: fluid thickness, u: edge-normal velocity, b: bottom
//! topography):
//!
//! ```text
//! ∂h/∂t = −∇·(h V)
//! ∂u/∂t = +(ζ+f)·v_t − ∂/∂n (K + g(h+b))
//! ```

use crate::constants::GRAVITY;
use crate::field::Field2;
use crate::operators as op;
use crate::operators::ScaledGeometry;
use crate::real::Real;
use grist_mesh::{HexMesh, Vec3, EARTH_OMEGA, EARTH_RADIUS_M};
use std::collections::BTreeSet;
use sunway_sim::{ColumnsMut, Substrate};

/// Per-kernel index subsets for one phase of a phased tendency evaluation:
/// which cells, edges, and vertices each kernel of [`SweSolver::tendencies`]
/// touches during that phase. Built by [`SwePhases::build`].
#[derive(Debug, Clone)]
pub struct SweSubset {
    /// Divergence / kinetic-energy / Bernoulli / mass-tendency cells.
    pub cells: Vec<u32>,
    /// Edges of the mass-flux chain (`cell_to_edge`, `swe_mass_flux`):
    /// every edge incident to a phase cell.
    pub flux_edges: Vec<u32>,
    /// Edges of the momentum chain (`gradient`, `vert_to_edge`,
    /// `tangential_velocity`, `swe_momentum_tend`): edges whose both cells
    /// are phase cells, so the Bernoulli values they read were computed in
    /// the same phase.
    pub momentum_edges: Vec<u32>,
    /// Vertices of the momentum-chain edges (`vorticity`,
    /// `swe_abs_vorticity`, `vert_velocity`).
    pub verts: Vec<u32>,
}

/// A two-phase cover of the full index space for the shallow-water
/// tendencies: `interior` runs first (e.g. overlapped with an in-flight
/// halo exchange), `remainder` completes every output index the interior
/// phase skipped. Each cell/edge/vertex of every kernel is dispatched
/// exactly once across the two phases, and every stencil a phase-1 kernel
/// reads is produced in phase 1, so
/// `tendencies_subset(interior); tendencies_subset(remainder)` is bitwise
/// identical to one full [`SweSolver::tendencies`] call — for *any* choice
/// of interior cells.
///
/// For overlap correctness (reading only owned data while halos are in
/// flight) the interior cells must additionally come from a
/// `RankLocale::phase_split` with pad ≥ 1: the interior mass-flux chain
/// reads `h` at the interior cells and their first neighbours.
#[derive(Debug, Clone)]
pub struct SwePhases {
    pub interior: SweSubset,
    pub remainder: SweSubset,
}

impl SwePhases {
    /// Derive the kernel subsets from an interior cell set.
    pub fn build(mesh: &HexMesh, interior_cells: &[u32]) -> Self {
        let interior_set: BTreeSet<u32> = interior_cells.iter().copied().collect();
        let mut flux_edges: BTreeSet<u32> = BTreeSet::new();
        for &c in interior_cells {
            for &e in mesh.cell_edges.row(c as usize) {
                flux_edges.insert(e);
            }
        }
        let momentum_edges: Vec<u32> = (0..mesh.n_edges() as u32)
            .filter(|&e| {
                let [c1, c2] = mesh.edge_cells[e as usize];
                interior_set.contains(&c1) && interior_set.contains(&c2)
            })
            .collect();
        let mut verts: BTreeSet<u32> = BTreeSet::new();
        for &e in &momentum_edges {
            for v in mesh.edge_verts[e as usize] {
                verts.insert(v);
            }
        }
        let interior = SweSubset {
            cells: {
                let mut c = interior_cells.to_vec();
                c.sort_unstable();
                c
            },
            flux_edges: flux_edges.iter().copied().collect(),
            momentum_edges: momentum_edges.clone(),
            verts: verts.iter().copied().collect(),
        };
        let momentum_set: BTreeSet<u32> = momentum_edges.iter().copied().collect();
        let remainder = SweSubset {
            cells: (0..mesh.n_cells() as u32)
                .filter(|c| !interior_set.contains(c))
                .collect(),
            flux_edges: (0..mesh.n_edges() as u32)
                .filter(|e| !flux_edges.contains(e))
                .collect(),
            momentum_edges: (0..mesh.n_edges() as u32)
                .filter(|e| !momentum_set.contains(e))
                .collect(),
            verts: (0..mesh.n_verts() as u32)
                .filter(|v| !verts.contains(v))
                .collect(),
        };
        SwePhases {
            interior,
            remainder,
        }
    }
}

/// Shallow-water prognostic state.
#[derive(Debug, Clone)]
pub struct SweState<R: Real> {
    /// Fluid thickness at cells \[m\].
    pub h: Field2<R>,
    /// Normal velocity at edges \[m/s\].
    pub u: Field2<R>,
}

/// The shallow-water solver with its scratch fields.
pub struct SweSolver<R: Real> {
    pub mesh: HexMesh,
    pub geom: ScaledGeometry<R>,
    /// Execution target for every hot loop (§3.3): serial MPE fallback or
    /// SWGOMP CPE-team offload. Clones share the job server and profiler.
    pub sub: Substrate,
    /// Bottom topography at cells \[m\].
    pub topo: Field2<R>,
    // scratch
    h_edge: Field2<R>,
    flux: Field2<R>,
    ke: Field2<R>,
    bern: Field2<R>,
    vor: Field2<R>,
    pv_edge: Field2<R>,
    ve: Field2<R>,
    vn: Field2<R>,
    vt: Field2<R>,
    grad_b: Field2<R>,
    dh: Field2<R>,
    du: Field2<R>,
}

impl<R: Real> SweSolver<R> {
    pub fn new(mesh: HexMesh) -> Self {
        Self::with_substrate(mesh, Substrate::serial())
    }

    /// Build the solver on an explicit execution target (the `!$omp target`
    /// choice of §3.3): pass [`Substrate::cpe_teams`] to offload every hot
    /// loop through the SWGOMP job server.
    pub fn with_substrate(mesh: HexMesh, sub: Substrate) -> Self {
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_verts());
        SweSolver {
            geom,
            sub,
            topo: Field2::zeros(1, nc),
            h_edge: Field2::zeros(1, ne),
            flux: Field2::zeros(1, ne),
            ke: Field2::zeros(1, nc),
            bern: Field2::zeros(1, nc),
            vor: Field2::zeros(1, nv),
            pv_edge: Field2::zeros(1, ne),
            ve: Field2::zeros(1, nv),
            vn: Field2::zeros(1, nv),
            vt: Field2::zeros(1, ne),
            grad_b: Field2::zeros(1, ne),
            dh: Field2::zeros(1, nc),
            du: Field2::zeros(1, ne),
            mesh,
        }
    }

    /// Evaluate tendencies `(dh/dt, du/dt)` for `state` into `(th, tu)`.
    pub fn tendencies(&mut self, state: &SweState<R>, th: &mut Field2<R>, tu: &mut Field2<R>) {
        self.tendencies_impl(state, th, tu, None);
    }

    /// [`Self::tendencies`] restricted to one phase of a [`SwePhases`]
    /// cover: only the subset's cells/edges/vertices are written, through
    /// the same kernels (same names, same per-index arithmetic). Running
    /// the interior and remainder subsets back-to-back is bitwise identical
    /// to one full `tendencies` call.
    pub fn tendencies_subset(
        &mut self,
        state: &SweState<R>,
        th: &mut Field2<R>,
        tu: &mut Field2<R>,
        subset: &SweSubset,
    ) {
        self.tendencies_impl(state, th, tu, Some(subset));
    }

    fn tendencies_impl(
        &mut self,
        state: &SweState<R>,
        th: &mut Field2<R>,
        tu: &mut Field2<R>,
        subset: Option<&SweSubset>,
    ) {
        let mesh = &self.mesh;
        let geom = &self.geom;
        let sub = self.sub.clone();
        let cells = subset.map(|s| s.cells.as_slice());
        let flux_edges = subset.map(|s| s.flux_edges.as_slice());
        let momentum_edges = subset.map(|s| s.momentum_edges.as_slice());
        let verts = subset.map(|s| s.verts.as_slice());
        // Mass flux and its divergence.
        op::cell_to_edge_on(&sub, mesh, &state.h, &mut self.h_edge, flux_edges);
        {
            let h_edge = &self.h_edge;
            let u = &state.u;
            let cols = ColumnsMut::new(self.flux.as_mut_slice(), 1);
            op::run_on(&sub, "swe_mass_flux", cols.len(), flux_edges, |e| {
                // SAFETY: each edge index is dispatched exactly once.
                *unsafe { cols.at(e) } = h_edge.at(0, e) * u.at(0, e);
            });
        }
        op::divergence_on(&sub, mesh, geom, &self.flux, th, cells);
        match cells {
            None => {
                for v in th.as_mut_slice() {
                    *v = -*v;
                }
            }
            Some(cs) => {
                let nlev = th.nlev();
                for &c in cs {
                    for k in 0..nlev {
                        let v = th.at(k, c as usize);
                        th.set(k, c as usize, -v);
                    }
                }
            }
        }

        // Bernoulli function K + g(h+b) and its gradient.
        op::kinetic_energy_on(&sub, mesh, geom, &state.u, &mut self.ke, cells);
        let g = R::from_f64(GRAVITY);
        {
            let ke = &self.ke;
            let topo = &self.topo;
            let h = &state.h;
            let cols = ColumnsMut::new(self.bern.as_mut_slice(), 1);
            op::run_on(&sub, "swe_bernoulli", cols.len(), cells, |c| {
                // SAFETY: each cell index is dispatched exactly once.
                *unsafe { cols.at(c) } = ke.at(0, c) + g * (h.at(0, c) + topo.at(0, c));
            });
        }
        op::gradient_on(
            &sub,
            mesh,
            geom,
            &self.bern,
            &mut self.grad_b,
            momentum_edges,
        );

        // Absolute vorticity at edges, tangential velocity, Coriolis term.
        op::vorticity_on(&sub, mesh, geom, &state.u, &mut self.vor, verts);
        {
            let cols = ColumnsMut::new(self.vor.as_mut_slice(), 1);
            op::run_on(&sub, "swe_abs_vorticity", cols.len(), verts, |v| {
                // SAFETY: each vertex index is dispatched exactly once.
                *unsafe { cols.at(v) } += geom.f_vert[v];
            });
        }
        op::vert_to_edge_on(&sub, mesh, &self.vor, &mut self.pv_edge, momentum_edges);
        op::vert_velocity_on(
            &sub,
            mesh,
            geom,
            &state.u,
            &mut self.ve,
            &mut self.vn,
            verts,
        );
        op::tangential_velocity_on(
            &sub,
            mesh,
            geom,
            &self.ve,
            &self.vn,
            &mut self.vt,
            momentum_edges,
        );

        {
            let pv_edge = &self.pv_edge;
            let vt = &self.vt;
            let grad_b = &self.grad_b;
            let cols = ColumnsMut::new(tu.as_mut_slice(), 1);
            op::run_on(&sub, "swe_momentum_tend", cols.len(), momentum_edges, |e| {
                // SAFETY: each edge index is dispatched exactly once.
                *unsafe { cols.at(e) } = pv_edge.at(0, e) * vt.at(0, e) - grad_b.at(0, e);
            });
        }
    }

    /// One Wicker–Skamarock RK3 step of size `dt` seconds.
    pub fn step_rk3(&mut self, state: &mut SweState<R>, dt: f64) {
        self.step_rk3_with_stage1(state, dt, |solver, st, th, tu| {
            solver.tendencies(st, th, tu);
        });
    }

    /// [`Self::step_rk3`] with the first-stage tendency evaluation supplied
    /// by the caller — the hook the halo-overlap driver uses to interleave
    /// an async exchange with phased tendencies: `stage1` typically runs
    /// the interior subset, completes the in-flight exchange (restoring
    /// `state.h` halos, hence the `&mut SweState`), then runs the
    /// remainder subset. Stages 2 and 3 always evaluate full tendencies;
    /// with `stage1 = |s, st, th, tu| s.tendencies(st, th, tu)` this is
    /// exactly `step_rk3`.
    pub fn step_rk3_with_stage1<F>(&mut self, state: &mut SweState<R>, dt: f64, stage1: F)
    where
        F: FnOnce(&mut Self, &mut SweState<R>, &mut Field2<R>, &mut Field2<R>),
    {
        // Attribute every kernel in the three RK stages to the dycore span.
        // (Cloned handle: the guard must not borrow `self`.)
        let span_sub = self.sub.clone();
        let _span = span_sub.span("dycore");
        let dt = R::from_f64(dt);
        let mut s1 = state.clone();
        let mut s2 = state.clone();
        let mut th = self.dh.clone();
        let mut tu = self.du.clone();

        stage1(self, state, &mut th, &mut tu);
        s1.h.copy_from(&state.h);
        s1.u.copy_from(&state.u);
        s1.h.axpy(dt / R::from_f64(3.0), &th);
        s1.u.axpy(dt / R::from_f64(3.0), &tu);

        self.tendencies(&s1, &mut th, &mut tu);
        s2.h.copy_from(&state.h);
        s2.u.copy_from(&state.u);
        s2.h.axpy(dt / R::from_f64(2.0), &th);
        s2.u.axpy(dt / R::from_f64(2.0), &tu);

        self.tendencies(&s2, &mut th, &mut tu);
        state.h.axpy(dt, &th);
        state.u.axpy(dt, &tu);
    }

    /// Total mass `Σ A_i h_i` (unit-sphere areas × R²).
    pub fn total_mass(&self, state: &SweState<R>) -> f64 {
        let r2 = self.geom.rearth * self.geom.rearth;
        (0..self.mesh.n_cells())
            .map(|c| state.h.at(0, c).to_f64() * self.mesh.cell_area[c] * r2)
            .sum()
    }

    /// Total energy `Σ A_i (h K + g h(h/2+b))`.
    pub fn total_energy(&mut self, state: &SweState<R>) -> f64 {
        let sub = self.sub.clone();
        op::kinetic_energy(&sub, &self.mesh, &self.geom, &state.u, &mut self.ke);
        let r2 = self.geom.rearth * self.geom.rearth;
        (0..self.mesh.n_cells())
            .map(|c| {
                let h = state.h.at(0, c).to_f64();
                let k = self.ke.at(0, c).to_f64();
                let b = self.topo.at(0, c).to_f64();
                (h * k + GRAVITY * h * (0.5 * h + b)) * self.mesh.cell_area[c] * r2
            })
            .sum()
    }
}

/// Williamson et al. (1992) test case 2: steady zonal geostrophic flow.
///
/// `u = u0 cos(lat)` eastward, `g h = g h0 − (R Ω u0 + u0²/2) sin²(lat)`.
pub fn williamson_tc2<R: Real>(mesh: &HexMesh) -> SweState<R> {
    let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_M / (12.0 * 86400.0);
    let gh0 = 2.94e4;
    let h = Field2::from_fn(1, mesh.n_cells(), |_, c| {
        let sl = mesh.cell_xyz[c].lat().sin();
        R::from_f64((gh0 - (EARTH_RADIUS_M * EARTH_OMEGA * u0 + 0.5 * u0 * u0) * sl * sl) / GRAVITY)
    });
    let u = Field2::from_fn(1, mesh.n_edges(), |_, e| {
        let m = mesh.edge_mid[e];
        // Zonal flow u0·cos(lat) east = u0 · (ẑ × m̂)/|ẑ × m̂| · cos(lat)
        //          = u0 · (ẑ × m̂)  (since |ẑ×m̂| = cos(lat))
        let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * u0;
        R::from_f64(v.dot(mesh.edge_normal[e]))
    });
    SweState { h, u }
}

/// Mean absolute deviation of `h` from a reference state, normalized by the
/// reference dynamic range — the standard TC2 error measure.
pub fn tc2_height_error<R: Real>(
    mesh: &HexMesh,
    state: &SweState<R>,
    reference: &SweState<R>,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in 0..mesh.n_cells() {
        let a = mesh.cell_area[c];
        num += (state.h.at(0, c).to_f64() - reference.h.at(0, c).to_f64()).abs() * a;
        den += reference.h.at(0, c).to_f64().abs() * a;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc2_initial_state_is_balanced() {
        // The discrete tendencies of the analytically balanced state must be
        // small compared with the advective scales of the flow.
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let state = williamson_tc2::<f64>(&solver.mesh);
        let mut th = Field2::zeros(1, solver.mesh.n_cells());
        let mut tu = Field2::zeros(1, solver.mesh.n_edges());
        solver.tendencies(&state, &mut th, &mut tu);
        let max_tu = tu.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        // u ~ 40 m/s; du/dt imbalance should correspond to ≪ u/day.
        assert!(max_tu < 40.0 / 86400.0 * 5.0, "max |du/dt| = {max_tu}");
    }

    #[test]
    fn tc2_stays_steady_for_one_day() {
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let reference = williamson_tc2::<f64>(&solver.mesh);
        let mut state = reference.clone();
        let dt = 300.0;
        for _ in 0..(86400.0 / dt) as usize {
            solver.step_rk3(&mut state, dt);
        }
        let err = tc2_height_error(&solver.mesh, &state, &reference);
        assert!(err < 5e-3, "TC2 height error after 1 day: {err}");
    }

    #[test]
    fn mass_is_conserved_to_roundoff() {
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        let m0 = solver.total_mass(&state);
        for _ in 0..50 {
            solver.step_rk3(&mut state, 400.0);
        }
        let m1 = solver.total_mass(&state);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn energy_drift_is_small() {
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        let e0 = solver.total_energy(&state);
        for _ in 0..100 {
            solver.step_rk3(&mut state, 400.0);
        }
        let e1 = solver.total_energy(&state);
        assert!(
            ((e1 - e0) / e0).abs() < 1e-4,
            "energy drift {}",
            (e1 - e0) / e0
        );
    }

    #[test]
    fn f32_run_tracks_f64_under_threshold() {
        // The §3.4.1 methodology on the shallow-water core: surface-height
        // (mass field) deviation between f32 and f64 stays below 5% over a
        // short integration.
        let mesh = HexMesh::build(3);
        let mut s64 = SweSolver::<f64>::new(mesh.clone());
        let mut s32 = SweSolver::<f32>::new(mesh);
        let mut st64 = williamson_tc2::<f64>(&s64.mesh);
        let mut st32 = williamson_tc2::<f32>(&s32.mesh);
        for _ in 0..30 {
            s64.step_rk3(&mut st64, 400.0);
            s32.step_rk3(&mut st32, 400.0);
        }
        let err = crate::real::relative_l2_error(&st32.h.to_f64_vec(), &st64.h.to_f64_vec());
        assert!(
            err < crate::real::MIXED_PRECISION_ERROR_THRESHOLD,
            "f32 deviation {err}"
        );
    }

    #[test]
    fn swe_phases_cover_every_index_exactly_once() {
        let mesh = HexMesh::build(3);
        // An arbitrary, deliberately ragged interior set.
        let interior: Vec<u32> = (0..mesh.n_cells() as u32).filter(|c| c % 3 != 1).collect();
        let phases = SwePhases::build(&mesh, &interior);
        let check = |a: &[u32], b: &[u32], n: usize, what: &str| {
            let mut all: Vec<u32> = a.iter().chain(b).copied().collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..n as u32).collect();
            assert_eq!(all, expect, "{what} must partition 0..{n}");
        };
        check(
            &phases.interior.cells,
            &phases.remainder.cells,
            mesh.n_cells(),
            "cells",
        );
        check(
            &phases.interior.flux_edges,
            &phases.remainder.flux_edges,
            mesh.n_edges(),
            "flux edges",
        );
        check(
            &phases.interior.momentum_edges,
            &phases.remainder.momentum_edges,
            mesh.n_edges(),
            "momentum edges",
        );
        check(
            &phases.interior.verts,
            &phases.remainder.verts,
            mesh.n_verts(),
            "verts",
        );
    }

    #[test]
    fn phased_stage1_is_bitwise_identical_to_full_step() {
        // The tentpole invariant: interior-then-remainder phased tendencies
        // in stage 1 must reproduce the plain step exactly, for an
        // arbitrary interior set (no tolerance — bit equality).
        let mesh = HexMesh::build(3);
        let interior: Vec<u32> = (0..mesh.n_cells() as u32).filter(|c| c % 2 == 0).collect();
        let phases = SwePhases::build(&mesh, &interior);
        let dt = 400.0;

        let mut plain = SweSolver::<f64>::new(mesh.clone());
        let mut a = williamson_tc2::<f64>(&plain.mesh);
        let mut phased = SweSolver::<f64>::new(mesh);
        let mut b = williamson_tc2::<f64>(&phased.mesh);
        for _ in 0..3 {
            plain.step_rk3(&mut a, dt);
            phased.step_rk3_with_stage1(&mut b, dt, |sv, st, th, tu| {
                sv.tendencies_subset(st, th, tu, &phases.interior);
                // An async halo completion would land here.
                sv.tendencies_subset(st, th, tu, &phases.remainder);
            });
        }
        let bits =
            |f: &Field2<f64>| -> Vec<u64> { f.as_slice().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&a.h), bits(&b.h), "h must match bit-for-bit");
        assert_eq!(bits(&a.u), bits(&b.u), "u must match bit-for-bit");
    }

    #[test]
    fn topography_enters_the_momentum_balance() {
        // A mountain under fluid at rest must accelerate the flow.
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let n = solver.mesh.n_cells();
        solver.topo = Field2::from_fn(1, n, |_, c| {
            let d = solver.mesh.cell_xyz[c].arc_dist(Vec3::new(1.0, 0.0, 0.0));
            2000.0 * (-(d / 0.3) * (d / 0.3)).exp()
        });
        let state = SweState {
            h: Field2::constant(1, n, 5000.0),
            u: Field2::zeros(1, solver.mesh.n_edges()),
        };
        let mut th = Field2::zeros(1, n);
        let mut tu = Field2::zeros(1, solver.mesh.n_edges());
        solver.tendencies(&state, &mut th, &mut tu);
        let max_tu = tu.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(
            max_tu > 1e-4,
            "topography gradient missing from momentum eq"
        );
    }
}
