//! Shallow-water mode of the dynamical core.
//!
//! The rotating shallow-water equations in vector-invariant form are the
//! classical proving ground for a C-grid operator set (GRIST's own baseline
//! evaluation does the same [Zhang et al. 2019]). The solver exercises every
//! horizontal operator of the 3-D core — divergence, gradient, vorticity,
//! kinetic energy, tangential reconstruction, nonlinear Coriolis — and is
//! validated on Williamson test case 2 (steady geostrophic flow).
//!
//! Equations (h: fluid thickness, u: edge-normal velocity, b: bottom
//! topography):
//!
//! ```text
//! ∂h/∂t = −∇·(h V)
//! ∂u/∂t = +(ζ+f)·v_t − ∂/∂n (K + g(h+b))
//! ```

use crate::constants::GRAVITY;
use crate::field::Field2;
use crate::operators as op;
use crate::operators::ScaledGeometry;
use crate::real::Real;
use grist_mesh::{HexMesh, Vec3, EARTH_OMEGA, EARTH_RADIUS_M};
use sunway_sim::{ColumnsMut, Substrate};

/// Shallow-water prognostic state.
#[derive(Debug, Clone)]
pub struct SweState<R: Real> {
    /// Fluid thickness at cells \[m\].
    pub h: Field2<R>,
    /// Normal velocity at edges \[m/s\].
    pub u: Field2<R>,
}

/// The shallow-water solver with its scratch fields.
pub struct SweSolver<R: Real> {
    pub mesh: HexMesh,
    pub geom: ScaledGeometry<R>,
    /// Execution target for every hot loop (§3.3): serial MPE fallback or
    /// SWGOMP CPE-team offload. Clones share the job server and profiler.
    pub sub: Substrate,
    /// Bottom topography at cells \[m\].
    pub topo: Field2<R>,
    // scratch
    h_edge: Field2<R>,
    flux: Field2<R>,
    ke: Field2<R>,
    bern: Field2<R>,
    vor: Field2<R>,
    pv_edge: Field2<R>,
    ve: Field2<R>,
    vn: Field2<R>,
    vt: Field2<R>,
    grad_b: Field2<R>,
    dh: Field2<R>,
    du: Field2<R>,
}

impl<R: Real> SweSolver<R> {
    pub fn new(mesh: HexMesh) -> Self {
        Self::with_substrate(mesh, Substrate::serial())
    }

    /// Build the solver on an explicit execution target (the `!$omp target`
    /// choice of §3.3): pass [`Substrate::cpe_teams`] to offload every hot
    /// loop through the SWGOMP job server.
    pub fn with_substrate(mesh: HexMesh, sub: Substrate) -> Self {
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let (nc, ne, nv) = (mesh.n_cells(), mesh.n_edges(), mesh.n_verts());
        SweSolver {
            geom,
            sub,
            topo: Field2::zeros(1, nc),
            h_edge: Field2::zeros(1, ne),
            flux: Field2::zeros(1, ne),
            ke: Field2::zeros(1, nc),
            bern: Field2::zeros(1, nc),
            vor: Field2::zeros(1, nv),
            pv_edge: Field2::zeros(1, ne),
            ve: Field2::zeros(1, nv),
            vn: Field2::zeros(1, nv),
            vt: Field2::zeros(1, ne),
            grad_b: Field2::zeros(1, ne),
            dh: Field2::zeros(1, nc),
            du: Field2::zeros(1, ne),
            mesh,
        }
    }

    /// Evaluate tendencies `(dh/dt, du/dt)` for `state` into `(th, tu)`.
    pub fn tendencies(&mut self, state: &SweState<R>, th: &mut Field2<R>, tu: &mut Field2<R>) {
        let mesh = &self.mesh;
        let geom = &self.geom;
        let sub = self.sub.clone();
        // Mass flux and its divergence.
        op::cell_to_edge(&sub, mesh, &state.h, &mut self.h_edge);
        {
            let h_edge = &self.h_edge;
            let u = &state.u;
            let cols = ColumnsMut::new(self.flux.as_mut_slice(), 1);
            sub.run("swe_mass_flux", cols.len(), |e| {
                // SAFETY: each edge index is dispatched exactly once.
                *unsafe { cols.at(e) } = h_edge.at(0, e) * u.at(0, e);
            });
        }
        op::divergence(&sub, mesh, geom, &self.flux, th);
        for v in th.as_mut_slice() {
            *v = -*v;
        }

        // Bernoulli function K + g(h+b) and its gradient.
        op::kinetic_energy(&sub, mesh, geom, &state.u, &mut self.ke);
        let g = R::from_f64(GRAVITY);
        {
            let ke = &self.ke;
            let topo = &self.topo;
            let h = &state.h;
            let cols = ColumnsMut::new(self.bern.as_mut_slice(), 1);
            sub.run("swe_bernoulli", cols.len(), |c| {
                // SAFETY: each cell index is dispatched exactly once.
                *unsafe { cols.at(c) } = ke.at(0, c) + g * (h.at(0, c) + topo.at(0, c));
            });
        }
        op::gradient(&sub, mesh, geom, &self.bern, &mut self.grad_b);

        // Absolute vorticity at edges, tangential velocity, Coriolis term.
        op::vorticity(&sub, mesh, geom, &state.u, &mut self.vor);
        {
            let cols = ColumnsMut::new(self.vor.as_mut_slice(), 1);
            sub.run("swe_abs_vorticity", cols.len(), |v| {
                // SAFETY: each vertex index is dispatched exactly once.
                *unsafe { cols.at(v) } += geom.f_vert[v];
            });
        }
        op::vert_to_edge(&sub, mesh, &self.vor, &mut self.pv_edge);
        op::vert_velocity(&sub, mesh, geom, &state.u, &mut self.ve, &mut self.vn);
        op::tangential_velocity(&sub, mesh, geom, &self.ve, &self.vn, &mut self.vt);

        {
            let pv_edge = &self.pv_edge;
            let vt = &self.vt;
            let grad_b = &self.grad_b;
            let cols = ColumnsMut::new(tu.as_mut_slice(), 1);
            sub.run("swe_momentum_tend", cols.len(), |e| {
                // SAFETY: each edge index is dispatched exactly once.
                *unsafe { cols.at(e) } = pv_edge.at(0, e) * vt.at(0, e) - grad_b.at(0, e);
            });
        }
    }

    /// One Wicker–Skamarock RK3 step of size `dt` seconds.
    pub fn step_rk3(&mut self, state: &mut SweState<R>, dt: f64) {
        // Attribute every kernel in the three RK stages to the dycore span.
        // (Cloned handle: the guard must not borrow `self`.)
        let span_sub = self.sub.clone();
        let _span = span_sub.span("dycore");
        let dt = R::from_f64(dt);
        let mut s1 = state.clone();
        let mut s2 = state.clone();
        let mut th = self.dh.clone();
        let mut tu = self.du.clone();

        self.tendencies(state, &mut th, &mut tu);
        s1.h.copy_from(&state.h);
        s1.u.copy_from(&state.u);
        s1.h.axpy(dt / R::from_f64(3.0), &th);
        s1.u.axpy(dt / R::from_f64(3.0), &tu);

        self.tendencies(&s1, &mut th, &mut tu);
        s2.h.copy_from(&state.h);
        s2.u.copy_from(&state.u);
        s2.h.axpy(dt / R::from_f64(2.0), &th);
        s2.u.axpy(dt / R::from_f64(2.0), &tu);

        self.tendencies(&s2, &mut th, &mut tu);
        state.h.axpy(dt, &th);
        state.u.axpy(dt, &tu);
    }

    /// Total mass `Σ A_i h_i` (unit-sphere areas × R²).
    pub fn total_mass(&self, state: &SweState<R>) -> f64 {
        let r2 = self.geom.rearth * self.geom.rearth;
        (0..self.mesh.n_cells())
            .map(|c| state.h.at(0, c).to_f64() * self.mesh.cell_area[c] * r2)
            .sum()
    }

    /// Total energy `Σ A_i (h K + g h(h/2+b))`.
    pub fn total_energy(&mut self, state: &SweState<R>) -> f64 {
        let sub = self.sub.clone();
        op::kinetic_energy(&sub, &self.mesh, &self.geom, &state.u, &mut self.ke);
        let r2 = self.geom.rearth * self.geom.rearth;
        (0..self.mesh.n_cells())
            .map(|c| {
                let h = state.h.at(0, c).to_f64();
                let k = self.ke.at(0, c).to_f64();
                let b = self.topo.at(0, c).to_f64();
                (h * k + GRAVITY * h * (0.5 * h + b)) * self.mesh.cell_area[c] * r2
            })
            .sum()
    }
}

/// Williamson et al. (1992) test case 2: steady zonal geostrophic flow.
///
/// `u = u0 cos(lat)` eastward, `g h = g h0 − (R Ω u0 + u0²/2) sin²(lat)`.
pub fn williamson_tc2<R: Real>(mesh: &HexMesh) -> SweState<R> {
    let u0 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_M / (12.0 * 86400.0);
    let gh0 = 2.94e4;
    let h = Field2::from_fn(1, mesh.n_cells(), |_, c| {
        let sl = mesh.cell_xyz[c].lat().sin();
        R::from_f64((gh0 - (EARTH_RADIUS_M * EARTH_OMEGA * u0 + 0.5 * u0 * u0) * sl * sl) / GRAVITY)
    });
    let u = Field2::from_fn(1, mesh.n_edges(), |_, e| {
        let m = mesh.edge_mid[e];
        // Zonal flow u0·cos(lat) east = u0 · (ẑ × m̂)/|ẑ × m̂| · cos(lat)
        //          = u0 · (ẑ × m̂)  (since |ẑ×m̂| = cos(lat))
        let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * u0;
        R::from_f64(v.dot(mesh.edge_normal[e]))
    });
    SweState { h, u }
}

/// Mean absolute deviation of `h` from a reference state, normalized by the
/// reference dynamic range — the standard TC2 error measure.
pub fn tc2_height_error<R: Real>(
    mesh: &HexMesh,
    state: &SweState<R>,
    reference: &SweState<R>,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for c in 0..mesh.n_cells() {
        let a = mesh.cell_area[c];
        num += (state.h.at(0, c).to_f64() - reference.h.at(0, c).to_f64()).abs() * a;
        den += reference.h.at(0, c).to_f64().abs() * a;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc2_initial_state_is_balanced() {
        // The discrete tendencies of the analytically balanced state must be
        // small compared with the advective scales of the flow.
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let state = williamson_tc2::<f64>(&solver.mesh);
        let mut th = Field2::zeros(1, solver.mesh.n_cells());
        let mut tu = Field2::zeros(1, solver.mesh.n_edges());
        solver.tendencies(&state, &mut th, &mut tu);
        let max_tu = tu.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        // u ~ 40 m/s; du/dt imbalance should correspond to ≪ u/day.
        assert!(max_tu < 40.0 / 86400.0 * 5.0, "max |du/dt| = {max_tu}");
    }

    #[test]
    fn tc2_stays_steady_for_one_day() {
        let mesh = HexMesh::build(4);
        let mut solver = SweSolver::<f64>::new(mesh);
        let reference = williamson_tc2::<f64>(&solver.mesh);
        let mut state = reference.clone();
        let dt = 300.0;
        for _ in 0..(86400.0 / dt) as usize {
            solver.step_rk3(&mut state, dt);
        }
        let err = tc2_height_error(&solver.mesh, &state, &reference);
        assert!(err < 5e-3, "TC2 height error after 1 day: {err}");
    }

    #[test]
    fn mass_is_conserved_to_roundoff() {
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        let m0 = solver.total_mass(&state);
        for _ in 0..50 {
            solver.step_rk3(&mut state, 400.0);
        }
        let m1 = solver.total_mass(&state);
        assert!(
            ((m1 - m0) / m0).abs() < 1e-12,
            "mass drift {}",
            (m1 - m0) / m0
        );
    }

    #[test]
    fn energy_drift_is_small() {
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let mut state = williamson_tc2::<f64>(&solver.mesh);
        let e0 = solver.total_energy(&state);
        for _ in 0..100 {
            solver.step_rk3(&mut state, 400.0);
        }
        let e1 = solver.total_energy(&state);
        assert!(
            ((e1 - e0) / e0).abs() < 1e-4,
            "energy drift {}",
            (e1 - e0) / e0
        );
    }

    #[test]
    fn f32_run_tracks_f64_under_threshold() {
        // The §3.4.1 methodology on the shallow-water core: surface-height
        // (mass field) deviation between f32 and f64 stays below 5% over a
        // short integration.
        let mesh = HexMesh::build(3);
        let mut s64 = SweSolver::<f64>::new(mesh.clone());
        let mut s32 = SweSolver::<f32>::new(mesh);
        let mut st64 = williamson_tc2::<f64>(&s64.mesh);
        let mut st32 = williamson_tc2::<f32>(&s32.mesh);
        for _ in 0..30 {
            s64.step_rk3(&mut st64, 400.0);
            s32.step_rk3(&mut st32, 400.0);
        }
        let err = crate::real::relative_l2_error(&st32.h.to_f64_vec(), &st64.h.to_f64_vec());
        assert!(
            err < crate::real::MIXED_PRECISION_ERROR_THRESHOLD,
            "f32 deviation {err}"
        );
    }

    #[test]
    fn topography_enters_the_momentum_balance() {
        // A mountain under fluid at rest must accelerate the flow.
        let mesh = HexMesh::build(3);
        let mut solver = SweSolver::<f64>::new(mesh);
        let n = solver.mesh.n_cells();
        solver.topo = Field2::from_fn(1, n, |_, c| {
            let d = solver.mesh.cell_xyz[c].arc_dist(Vec3::new(1.0, 0.0, 0.0));
            2000.0 * (-(d / 0.3) * (d / 0.3)).exp()
        });
        let state = SweState {
            h: Field2::constant(1, n, 5000.0),
            u: Field2::zeros(1, solver.mesh.n_edges()),
        };
        let mut th = Field2::zeros(1, n);
        let mut tu = Field2::zeros(1, solver.mesh.n_edges());
        solver.tendencies(&state, &mut th, &mut tu);
        let max_tu = tu.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(
            max_tu > 1e-4,
            "topography gradient missing from momentum eq"
        );
    }
}
