//! Passive tracer transport: flux-form advection with a Zalesak-style
//! flux-corrected-transport (FCT) limiter — the paper's
//! `tracer_transport_hori_flux_limiter` kernel (Fig. 9).
//!
//! The tracer equation "can be computed almost entirely using lower
//! precision; the sole exception is the mass flux δπV, which is accumulated
//! from the dry mass equation and requires double precision" (§3.4.2).
//! Accordingly the whole routine is generic over [`Real`]; the coupled model
//! keeps its master mass fluxes in `f64` and casts them into the working
//! precision here.
//!
//! Bookkeeping is done in area-integrated mass units:
//! `M_i = δπ_i A_i` and per-step edge transports `T_e = Δt F_e ℓ_e`
//! (positive from `edge_cells[e][0]` to `edge_cells[e][1]`), which makes
//! conservation exact by construction.

use std::ops::{Add, Mul, Sub};

use crate::field::Field2;
use crate::lanes::{lane_body, LaneVec, LANE_WIDTH};
use crate::operators::ScaledGeometry;
use crate::real::Real;
use grist_mesh::HexMesh;
use sunway_sim::{ColumnsMut, KernelMode, Substrate};

/// Scratch buffers for one FCT transport invocation, reusable across steps.
pub struct FctWorkspace<R: Real> {
    q_td: Field2<R>,
    mass_new: Field2<R>,
    anti: Field2<R>,
    r_plus: Field2<R>,
    r_minus: Field2<R>,
    transport: Field2<R>,
}

impl<R: Real> FctWorkspace<R> {
    pub fn new(nlev: usize, mesh: &HexMesh) -> Self {
        FctWorkspace {
            q_td: Field2::zeros(nlev, mesh.n_cells()),
            mass_new: Field2::zeros(nlev, mesh.n_cells()),
            anti: Field2::zeros(nlev, mesh.n_edges()),
            r_plus: Field2::zeros(nlev, mesh.n_cells()),
            r_minus: Field2::zeros(nlev, mesh.n_cells()),
            transport: Field2::zeros(nlev, mesh.n_edges()),
        }
    }
}

/// One forward-Euler FCT transport step.
///
/// * `mass` — area-integrated cell mass `M_i = δπ_i A_i` (updated in place to
///   the post-step mass).
/// * `flux` — edge-normal dry-mass flux `F_e = (δπ u)_e` \[Pa·m/s\].
/// * `q`    — mixing ratio, updated in place, guaranteed monotone (no new
///   extrema) and exactly conservative in `Σ M_i q_i`.
///
/// The caller must respect the flux CFL: total outflow of any cell during
/// `dt` may not exceed its mass (checked with `debug_assert`).
#[allow(clippy::too_many_arguments)]
pub fn fct_transport_step<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    mass: &mut Field2<R>,
    flux: &Field2<R>,
    q: &mut Field2<R>,
    dt: f64,
    ws: &mut FctWorkspace<R>,
) {
    let nlev = q.nlev();
    let dt_r = R::from_f64(dt);
    let lanes = sub.kernel_mode() == KernelMode::Simd;
    let body = if lanes { lane_body(nlev) } else { 0 };

    // Per-edge transports T_e = dt · F_e · ℓ_e.
    {
        let cols = ColumnsMut::new(ws.transport.as_mut_slice(), nlev);
        sub.run("fct_transport", cols.len(), |e| {
            // SAFETY: each edge index is dispatched exactly once.
            let col = unsafe { cols.col(e) };
            let le = geom.edge_le[e];
            let f = flux.col(e);
            let vle = LaneVec::splat(le);
            let vdt = LaneVec::splat(dt_r);
            let mut k = 0;
            while k < body {
                LaneVec::load(&f[k..])
                    .mul(vle)
                    .mul(vdt)
                    .store(&mut col[k..]);
                k += LANE_WIDTH;
            }
            for k in body..nlev {
                col[k] = f[k] * le * dt_r;
            }
        });
    }

    // Low-order (upwind) transported tracer and the updated mass.
    let q_ro: &Field2<R> = q;
    let mass_ro: &Field2<R> = mass;
    let transport = &ws.transport;
    {
        let qtd_cols = ColumnsMut::new(ws.q_td.as_mut_slice(), nlev);
        let mnew_cols = ColumnsMut::new(ws.mass_new.as_mut_slice(), nlev);
        sub.run("fct_loworder", qtd_cols.len(), |c| {
            // SAFETY: each cell index is dispatched exactly once.
            let qtd = unsafe { qtd_cols.col(c) };
            let mnew = unsafe { mnew_cols.col(c) };
            let rng = mesh.cell_edges.row_range(c);
            for lev in 0..nlev {
                let m_old = mass_ro.at(lev, c);
                let mut m = m_old;
                let mut mq = m_old * q_ro.at(lev, c);
                for (k, &e) in mesh.cell_edges.row(c).iter().enumerate() {
                    let s = geom.cell_edge_sign[rng.start + k];
                    let t = transport.at(lev, e as usize);
                    let [c1, c2] = mesh.edge_cells[e as usize];
                    let q_up = if t >= R::ZERO {
                        q_ro.at(lev, c1 as usize)
                    } else {
                        q_ro.at(lev, c2 as usize)
                    };
                    m -= s * t;
                    mq -= s * t * q_up;
                }
                debug_assert!(
                    m > R::ZERO,
                    "FCT: cell {c} lev {lev} emptied — CFL violated"
                );
                mnew[lev] = m;
                qtd[lev] = mq / m;
            }
        });
    }

    // Antidiffusive fluxes A_e = T_e (q_centered − q_upwind).
    let half = R::from_f64(0.5);
    {
        let cols = ColumnsMut::new(ws.anti.as_mut_slice(), nlev);
        sub.run("fct_antidiffusive", cols.len(), |e| {
            // SAFETY: each edge index is dispatched exactly once.
            let col = unsafe { cols.col(e) };
            let [c1, c2] = mesh.edge_cells[e];
            let (q1, q2) = (q_ro.col(c1 as usize), q_ro.col(c2 as usize));
            let t_col = transport.col(e);
            let vhalf = LaneVec::splat(half);
            let mut k = 0;
            while k < body {
                let tv = LaneVec::load(&t_col[k..]);
                let v1 = LaneVec::load(&q1[k..]);
                let v2 = LaneVec::load(&q2[k..]);
                let q_cent = v1.add(v2).mul(vhalf);
                // The upwind branch becomes a per-lane select on sign(T).
                let q_up = LaneVec::select_ge_zero(tv, v1, v2);
                tv.mul(q_cent.sub(q_up)).store(&mut col[k..]);
                k += LANE_WIDTH;
            }
            for lev in k..nlev {
                let t = t_col[lev];
                let q_cent = (q1[lev] + q2[lev]) * half;
                let q_up = if t >= R::ZERO { q1[lev] } else { q2[lev] };
                col[lev] = t * (q_cent - q_up);
            }
        });
    }

    // Zalesak limiter factors.
    let q_td = &ws.q_td;
    let mass_new = &ws.mass_new;
    let anti = &ws.anti;
    let tiny = R::from_f64(1e-300_f64.max(f64::MIN_POSITIVE));
    {
        let rp_cols = ColumnsMut::new(ws.r_plus.as_mut_slice(), nlev);
        let rm_cols = ColumnsMut::new(ws.r_minus.as_mut_slice(), nlev);
        sub.run("fct_limiter", rp_cols.len(), |c| {
            // SAFETY: each cell index is dispatched exactly once.
            let rp = unsafe { rp_cols.col(c) };
            let rm = unsafe { rm_cols.col(c) };
            let rng = mesh.cell_edges.row_range(c);
            for lev in 0..nlev {
                // Admissible bounds: extrema of q_td and q_old over the cell
                // and its neighbours.
                let mut qmax = q_td.at(lev, c).max(q_ro.at(lev, c));
                let mut qmin = q_td.at(lev, c).min(q_ro.at(lev, c));
                for &nb in mesh.cell_neighbors.row(c) {
                    qmax = qmax
                        .max(q_td.at(lev, nb as usize))
                        .max(q_ro.at(lev, nb as usize));
                    qmin = qmin
                        .min(q_td.at(lev, nb as usize))
                        .min(q_ro.at(lev, nb as usize));
                }
                let mut p_plus = R::ZERO;
                let mut p_minus = R::ZERO;
                for (k, &e) in mesh.cell_edges.row(c).iter().enumerate() {
                    let s = geom.cell_edge_sign[rng.start + k];
                    let a = s * anti.at(lev, e as usize);
                    if a < R::ZERO {
                        p_plus -= a; // incoming antidiffusive mass
                    } else {
                        p_minus += a; // outgoing
                    }
                }
                let m = mass_new.at(lev, c);
                let q_plus = (qmax - q_td.at(lev, c)) * m;
                let q_minus = (q_td.at(lev, c) - qmin) * m;
                rp[lev] = if p_plus > tiny {
                    (q_plus / p_plus).min(R::ONE)
                } else {
                    R::ZERO
                };
                rm[lev] = if p_minus > tiny {
                    (q_minus / p_minus).min(R::ONE)
                } else {
                    R::ZERO
                };
            }
        });
    }

    // Apply limited antidiffusive fluxes.
    let r_plus = &ws.r_plus;
    let r_minus = &ws.r_minus;
    {
        let q_cols = ColumnsMut::new(q.as_mut_slice(), nlev);
        let m_cols = ColumnsMut::new(mass.as_mut_slice(), nlev);
        sub.run("fct_apply", q_cols.len(), |c| {
            // SAFETY: each cell index is dispatched exactly once.
            let qc = unsafe { q_cols.col(c) };
            let mc = unsafe { m_cols.col(c) };
            let rng = mesh.cell_edges.row_range(c);
            for lev in 0..nlev {
                let m = mass_new.at(lev, c);
                let mut mq = q_td.at(lev, c) * m;
                for (k, &e) in mesh.cell_edges.row(c).iter().enumerate() {
                    let s = geom.cell_edge_sign[rng.start + k];
                    let a = anti.at(lev, e as usize);
                    let [c1, c2] = mesh.edge_cells[e as usize];
                    // A_e > 0 moves tracer from c1 to c2 (relative to upwind).
                    let coef = if a >= R::ZERO {
                        r_minus
                            .at(lev, c1 as usize)
                            .min(r_plus.at(lev, c2 as usize))
                    } else {
                        r_plus
                            .at(lev, c1 as usize)
                            .min(r_minus.at(lev, c2 as usize))
                    };
                    mq -= s * coef * a;
                }
                qc[lev] = mq / m;
                mc[lev] = m;
            }
        });
    }
}

/// Total tracer content `Σ M_i q_i` (conservation diagnostic).
pub fn total_tracer<R: Real>(mass: &Field2<R>, q: &Field2<R>) -> f64 {
    mass.as_slice()
        .iter()
        .zip(q.as_slice())
        .map(|(&m, &x)| m.to_f64() * x.to_f64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::ScaledGeometry;
    use grist_mesh::{Vec3, EARTH_OMEGA, EARTH_RADIUS_M};

    fn sub() -> Substrate {
        Substrate::serial()
    }

    fn setup(level: u32) -> (HexMesh, ScaledGeometry<f64>) {
        let mesh = HexMesh::build(level);
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        (mesh, geom)
    }

    /// Solid-body-rotation dry-mass flux with uniform δπ = dp.
    fn sb_flux(mesh: &HexMesh, dp: f64, omega: f64) -> Field2<f64> {
        Field2::from_fn(1, mesh.n_edges(), |_, e| {
            let m = mesh.edge_mid[e];
            let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * (omega * EARTH_RADIUS_M);
            dp * v.dot(mesh.edge_normal[e])
        })
    }

    fn uniform_mass(mesh: &HexMesh, dp: f64) -> Field2<f64> {
        Field2::from_fn(1, mesh.n_cells(), |_, c| {
            dp * mesh.cell_area[c] * EARTH_RADIUS_M * EARTH_RADIUS_M
        })
    }

    fn gaussian_blob(mesh: &HexMesh, center: Vec3, width: f64) -> Field2<f64> {
        Field2::from_fn(1, mesh.n_cells(), |_, c| {
            let d = mesh.cell_xyz[c].arc_dist(center);
            (-(d / width) * (d / width)).exp()
        })
    }

    #[test]
    fn constant_tracer_is_preserved_exactly() {
        let (mesh, geom) = setup(3);
        let mut mass = uniform_mass(&mesh, 1000.0);
        let flux = sb_flux(&mesh, 1000.0, 1e-5);
        let mut q = Field2::constant(1, mesh.n_cells(), 0.37);
        let mut ws = FctWorkspace::new(1, &mesh);
        for _ in 0..10 {
            fct_transport_step(
                &sub(),
                &mesh,
                &geom,
                &mut mass,
                &flux,
                &mut q,
                600.0,
                &mut ws,
            );
        }
        for &v in q.as_slice() {
            assert!((v - 0.37).abs() < 1e-12, "constant tracer drifted to {v}");
        }
    }

    #[test]
    fn tracer_mass_is_conserved_to_roundoff() {
        let (mesh, geom) = setup(3);
        let mut mass = uniform_mass(&mesh, 1000.0);
        let flux = sb_flux(&mesh, 1000.0, 1e-5);
        let mut q = gaussian_blob(&mesh, Vec3::new(1.0, 0.0, 0.0), 0.3);
        let mut ws = FctWorkspace::new(1, &mesh);
        let t0 = total_tracer(&mass, &q);
        for _ in 0..20 {
            fct_transport_step(
                &sub(),
                &mesh,
                &geom,
                &mut mass,
                &flux,
                &mut q,
                600.0,
                &mut ws,
            );
        }
        let t1 = total_tracer(&mass, &q);
        assert!(
            ((t1 - t0) / t0).abs() < 1e-12,
            "tracer drift {}",
            (t1 - t0) / t0
        );
    }

    #[test]
    fn limiter_prevents_new_extrema() {
        let (mesh, geom) = setup(4);
        let mut mass = uniform_mass(&mesh, 1000.0);
        let flux = sb_flux(&mesh, 1000.0, 2e-5);
        let mut q = gaussian_blob(&mesh, Vec3::new(0.0, 1.0, 0.0), 0.2);
        let (q0_min, q0_max) = (q.min_value(), q.max_value());
        let mut ws = FctWorkspace::new(1, &mesh);
        for _ in 0..50 {
            fct_transport_step(
                &sub(),
                &mesh,
                &geom,
                &mut mass,
                &flux,
                &mut q,
                400.0,
                &mut ws,
            );
        }
        let eps = 1e-12;
        assert!(
            q.min_value() >= q0_min - eps,
            "undershoot: {}",
            q.min_value()
        );
        assert!(
            q.max_value() <= q0_max + eps,
            "overshoot: {}",
            q.max_value()
        );
    }

    #[test]
    fn blob_is_advected_downstream() {
        // After a quarter revolution the blob peak must have moved eastward.
        let (mesh, geom) = setup(4);
        let dp = 1000.0;
        let omega = 2.0 * std::f64::consts::PI / (4.0 * 86400.0); // rev in 4 days
        let mut mass = uniform_mass(&mesh, dp);
        let flux = sb_flux(&mesh, dp, omega);
        let start = Vec3::new(1.0, 0.0, 0.0);
        let mut q = gaussian_blob(&mesh, start, 0.25);
        let mut ws = FctWorkspace::new(1, &mesh);
        let dt = 300.0;
        let steps = (86400.0 / dt) as usize; // one day = quarter revolution
        for _ in 0..steps {
            fct_transport_step(&sub(), &mesh, &geom, &mut mass, &flux, &mut q, dt, &mut ws);
        }
        let peak = (0..mesh.n_cells())
            .max_by(|&a, &b| q.at(0, a).partial_cmp(&q.at(0, b)).unwrap())
            .unwrap();
        let expected = Vec3::new(0.0, 1.0, 0.0); // 90° east
        let d = mesh.cell_xyz[peak].arc_dist(expected);
        assert!(d < 0.25, "peak {d} rad from expected position");
        // The peak must not be excessively damped.
        assert!(
            q.max_value() > 0.45,
            "peak over-diffused: {}",
            q.max_value()
        );
    }

    #[test]
    fn lane_fct_step_matches_scalar_reference_bitwise() {
        // nlev = 11: one full lane group + a 3-level scalar tail.
        let (mesh, geom) = setup(3);
        let nlev = 11;
        let mk_mass = |_: ()| {
            Field2::from_fn(nlev, mesh.n_cells(), |k, c| {
                (1000.0 + k as f64) * mesh.cell_area[c] * EARTH_RADIUS_M * EARTH_RADIUS_M
            })
        };
        let flux = Field2::from_fn(nlev, mesh.n_edges(), |k, e| {
            let m = mesh.edge_mid[e];
            let v = Vec3::new(0.0, 0.0, 1.0).cross(m) * (1e-5 * EARTH_RADIUS_M);
            (1000.0 + k as f64) * v.dot(mesh.edge_normal[e])
        });
        let blob = Field2::from_fn(nlev, mesh.n_cells(), |k, c| {
            let d = mesh.cell_xyz[c].arc_dist(Vec3::new(1.0, 0.0, 0.0));
            (-(d * d) / (0.09 + 0.01 * k as f64)).exp()
        });
        let scalar = sub();
        scalar.set_kernel_mode(sunway_sim::KernelMode::ScalarReference);
        let simd = sub();
        simd.set_kernel_mode(sunway_sim::KernelMode::Simd);
        let (mut m_s, mut m_v) = (mk_mass(()), mk_mass(()));
        let (mut q_s, mut q_v) = (blob.clone(), blob);
        let mut w_s = FctWorkspace::new(nlev, &mesh);
        let mut w_v = FctWorkspace::new(nlev, &mesh);
        for _ in 0..5 {
            fct_transport_step(
                &scalar, &mesh, &geom, &mut m_s, &flux, &mut q_s, 600.0, &mut w_s,
            );
            fct_transport_step(
                &simd, &mesh, &geom, &mut m_v, &flux, &mut q_v, 600.0, &mut w_v,
            );
        }
        assert_eq!(q_s.as_slice(), q_v.as_slice(), "FCT q diverged");
        assert_eq!(m_s.as_slice(), m_v.as_slice(), "FCT mass diverged");
    }

    #[test]
    fn f32_transport_tracks_f64() {
        let (mesh, _) = setup(3);
        let geom64: ScaledGeometry<f64> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let geom32: ScaledGeometry<f32> = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        let mut m64 = uniform_mass(&mesh, 1000.0);
        let mut m32: Field2<f32> = m64.cast();
        let f64x = sb_flux(&mesh, 1000.0, 1e-5);
        let f32x: Field2<f32> = f64x.cast();
        let mut q64 = gaussian_blob(&mesh, Vec3::new(1.0, 0.0, 0.0), 0.3);
        let mut q32: Field2<f32> = q64.cast();
        let mut w64 = FctWorkspace::new(1, &mesh);
        let mut w32 = FctWorkspace::new(1, &mesh);
        for _ in 0..20 {
            fct_transport_step(
                &sub(),
                &mesh,
                &geom64,
                &mut m64,
                &f64x,
                &mut q64,
                600.0,
                &mut w64,
            );
            fct_transport_step(
                &sub(),
                &mesh,
                &geom32,
                &mut m32,
                &f32x,
                &mut q32,
                600.0,
                &mut w32,
            );
        }
        let err = crate::real::relative_l2_error(&q32.to_f64_vec(), &q64.to_f64_vec());
        assert!(err < 1e-3, "f32 FCT deviation {err}");
    }
}
