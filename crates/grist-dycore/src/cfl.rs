//! Courant-number diagnostics: the stability monitors behind the Table-2
//! timestep choices (G12 runs dyn = 4 s because the horizontal acoustic CFL
//! at 1.5 km demands it; tracer steps stretch to 30 s because advective
//! velocities, not sound, bound them).

use crate::constants::{GRAVITY, KAPPA, P0, RDRY};
use crate::field::Field2;
use crate::hevi::{NhSolver, NhState};
use crate::real::Real;
use grist_mesh::EARTH_RADIUS_M;

/// CFL summary of a state at a given timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CflReport {
    /// Horizontal acoustic Courant number `(|u| + c_s)·Δt/Δx` (max).
    pub acoustic: f64,
    /// Horizontal advective Courant number `|u|·Δt/Δx` (max).
    pub advective: f64,
    /// Vertical Courant number `|w|·Δt/Δz` (max) — handled implicitly by
    /// HEVI, reported for information.
    pub vertical: f64,
    /// Minimum dual-edge spacing \[m\].
    pub min_dx: f64,
}

impl CflReport {
    /// Explicit horizontal stability requires the acoustic number below the
    /// RK3 bound (~1.7 for centred advection; we use a conservative 1).
    pub fn horizontally_stable(&self) -> bool {
        self.acoustic < 1.0
    }
}

/// Sound speed from the layer temperature: `c_s = sqrt(γ R T)`.
fn sound_speed(t: f64) -> f64 {
    let gamma = 1.0 / (1.0 - KAPPA); // cp/cv
    (gamma * RDRY * t).sqrt()
}

/// Evaluate the CFL report for `state` at timestep `dt`.
pub fn cfl_report<R: Real>(solver: &mut NhSolver<R>, state: &NhState<R>, dt: f64) -> CflReport {
    let mesh = solver.mesh.clone();
    let nlev = solver.vc.nlev;
    let (_p, theta, dphi, exner) = solver.diagnose_fields(state);
    let theta = theta.clone();
    let exner: Field2<f64> = exner.clone();
    let dphi = dphi.clone();

    let min_dx = mesh.edge_de.iter().cloned().fold(f64::INFINITY, f64::min) * EARTH_RADIUS_M;

    let mut acoustic = 0.0f64;
    let mut advective = 0.0f64;
    for e in 0..mesh.n_edges() {
        let dx = mesh.edge_de[e] * EARTH_RADIUS_M;
        let [c1, c2] = mesh.edge_cells[e];
        for k in 0..nlev {
            let u = state.u.at(k, e).to_f64().abs();
            let t = 0.5
                * (theta.at(k, c1 as usize) * exner.at(k, c1 as usize)
                    + theta.at(k, c2 as usize) * exner.at(k, c2 as usize));
            let cs = sound_speed(t);
            acoustic = acoustic.max((u + cs) * dt / dx);
            advective = advective.max(u * dt / dx);
        }
    }

    let mut vertical = 0.0f64;
    for c in 0..mesh.n_cells() {
        for k in 0..nlev {
            let dz = dphi.at(k, c) / GRAVITY;
            let w = 0.5 * (state.w.at(k, c).abs() + state.w.at(k + 1, c).abs());
            vertical = vertical.max(w * dt / dz.max(1.0));
        }
    }
    let _ = P0;
    CflReport {
        acoustic,
        advective,
        vertical,
        min_dx,
    }
}

/// The largest dynamics timestep with acoustic Courant number below `target`
/// for a resting atmosphere of temperature `t0` on a grid of spacing `dx_m`.
pub fn max_acoustic_dt(dx_m: f64, t0: f64, target: f64) -> f64 {
    target * dx_m / sound_speed(t0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hevi::NhConfig;
    use crate::vertical::VerticalCoord;
    use grist_mesh::HexMesh;

    #[test]
    fn sound_speed_is_earthlike() {
        let cs = sound_speed(288.0);
        assert!((330.0..355.0).contains(&cs), "c_s = {cs}");
    }

    #[test]
    fn rest_state_cfl_is_purely_acoustic() {
        let mut s = NhSolver::<f64>::new(
            HexMesh::build(2),
            VerticalCoord::uniform(8),
            NhConfig::default(),
        );
        let st = s.isothermal_rest_state(280.0, 1.0e5);
        let r = cfl_report(&mut s, &st, 100.0);
        assert_eq!(r.advective, 0.0);
        assert_eq!(r.vertical, 0.0);
        assert!(r.acoustic > 0.0);
        // acoustic = c_s·dt/min_dx within rounding of the per-edge dx
        let expected = sound_speed(280.0) * 100.0 / r.min_dx;
        assert!((r.acoustic / expected - 1.0).abs() < 0.05);
    }

    #[test]
    fn g12_timestep_satisfies_the_acoustic_bound() {
        // Table 2: G12 (min spacing ~1.47 km) runs dyn = 4 s.
        let dt_max = max_acoustic_dt(1470.0, 260.0, 1.0);
        assert!(
            dt_max > 4.0,
            "4 s must be acoustically stable at G12: bound {dt_max}"
        );
        assert!(dt_max < 8.0, "and 8 s must not be far off: bound {dt_max}");
        // G11S doubles the spacing and the paper doubles dt to 8 s.
        let dt_max_g11 = max_acoustic_dt(2940.0, 260.0, 1.0);
        assert!(dt_max_g11 > 8.0);
    }

    #[test]
    fn cfl_grows_linearly_with_dt_and_wind() {
        let mut s = NhSolver::<f64>::new(
            HexMesh::build(2),
            VerticalCoord::uniform(8),
            NhConfig::default(),
        );
        let mut st = s.isothermal_rest_state(280.0, 1.0e5);
        for e in 0..s.mesh.n_edges() {
            for k in 0..8 {
                st.u.set(k, e, 50.0);
            }
        }
        let r1 = cfl_report(&mut s, &st, 100.0);
        let r2 = cfl_report(&mut s, &st, 200.0);
        assert!((r2.acoustic / r1.acoustic - 2.0).abs() < 1e-9);
        assert!((r2.advective / r1.advective - 2.0).abs() < 1e-9);
        assert!(r1.advective > 0.0);
    }

    #[test]
    fn run_config_timesteps_are_horizontally_stable() {
        // The model's own default timesteps must pass their own CFL monitor.
        let mut s = NhSolver::<f64>::new(
            HexMesh::build(3),
            VerticalCoord::uniform(8),
            NhConfig::default(),
        );
        let st = s.isothermal_rest_state(300.0, 1.0e5);
        // Level-3 spacing ≈ 870 km ⇒ dt 400 s gives acoustic ≈ 0.2.
        let r = cfl_report(&mut s, &st, 400.0);
        assert!(r.horizontally_stable(), "acoustic CFL {}", r.acoustic);
    }
}
