//! The named hot kernels benchmarked in the paper's Fig. 9, each paired with
//! an arithmetic/memory cost descriptor consumed by the `sunway-sim` roofline
//! model:
//!
//! * `grad_kinetic_energy`  — the Fig. 4 example kernel (`tend_grad_ke_at_edge`).
//! * `primal_normal_flux_edge` — "involves numerous division, power, and
//!   other computationally expensive calculations, resulting in significant
//!   mixed precision speedup".
//! * `compute_rrr` — "features mixed precision optimization and involves a
//!   large number of arrays" (the LDCache-thrashing candidate of Fig. 6).
//! * `calc_coriolis_term` — "lacking mixed precision optimization and
//!   accessing relatively few arrays, derives minimal benefit".
//! * `tracer_transport_hori_flux_limiter` — the FCT limiter (see
//!   [`crate::tracer`]).

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::constants::{KAPPA, P0, RDRY};
use crate::field::Field2;
use crate::lanes::{lane_body, LaneVec, LANE_WIDTH};
use crate::operators::ScaledGeometry;
use crate::real::Real;
use grist_mesh::HexMesh;
use sunway_sim::{ColumnsMut, KernelMode, Substrate};

/// Static cost descriptor of one kernel invocation, per (level, element)
/// point: the inputs of the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Number of output points (elements × levels).
    pub points: usize,
    /// Cheap flops (add/mul/fma) per point.
    pub flops_per_point: f64,
    /// Expensive operations (divide, sqrt, pow, exp) per point — these are
    /// the operations where SW26010P f32 runs faster than f64 (§4.6).
    pub expensive_per_point: f64,
    /// Distinct arrays streamed (reads + writes) — drives LDCache-way
    /// pressure (Fig. 6).
    pub arrays: usize,
    /// Bytes moved per point per array element of the working precision.
    pub bytes_per_point: f64,
    /// Whether the kernel has a mixed-precision variant in the paper.
    pub has_mixed_variant: bool,
}

impl KernelCost {
    pub fn total_flops(&self) -> f64 {
        self.points as f64 * (self.flops_per_point + self.expensive_per_point)
    }
    pub fn total_bytes(&self) -> f64 {
        self.points as f64 * self.bytes_per_point
    }
}

/// `tend_grad_ke_at_edge` — the Fig. 4 kernel verbatim:
/// `tend(ilev,ie) = −(K(ilev,c2) − K(ilev,c1)) / (rearth · edt_leng(ie))`.
pub fn grad_kinetic_energy<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    ke: &Field2<R>,
    tend: &mut Field2<R>,
) {
    let nlev = ke.nlev();
    let lanes = sub.kernel_mode() == KernelMode::Simd;
    let cols = ColumnsMut::new(tend.as_mut_slice(), nlev);
    // 4 streamed arrays per edge column (ke×2, inv_de, tend) — see
    // `grad_kinetic_energy_cost`; feeds the dma.* counters under CPE teams.
    let bytes = 4 * nlev * R::BYTES;
    sub.run_with_bytes("grad_kinetic_energy", cols.len(), bytes, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [c1, c2] = mesh.edge_cells[e];
        let (a, b) = (ke.col(c1 as usize), ke.col(c2 as usize));
        let inv = geom.inv_edge_de[e];
        let body = if lanes { lane_body(nlev) } else { 0 };
        let vinv = LaneVec::splat(inv);
        let mut k = 0;
        while k < body {
            LaneVec::load(&b[k..])
                .sub(LaneVec::load(&a[k..]))
                .neg()
                .mul(vinv)
                .store(&mut col[k..]);
            k += LANE_WIDTH;
        }
        for k in body..nlev {
            col[k] = -(b[k] - a[k]) * inv;
        }
    });
}

/// Cost model for [`grad_kinetic_energy`].
pub fn grad_kinetic_energy_cost<R: Real>(n_edges: usize, nlev: usize) -> KernelCost {
    KernelCost {
        points: n_edges * nlev,
        flops_per_point: 3.0,
        expensive_per_point: 0.0,
        arrays: 4, // ke(c1), ke(c2), inv_de, tend
        bytes_per_point: 4.0 * R::BYTES as f64,
        has_mixed_variant: true,
    }
}

/// `primal_normal_flux_edge` — edge mass/energy flux with nonlinear
/// (power-law) thickness weighting and Exner conversion. Division/`powf`
/// heavy, as the paper describes.
pub fn primal_normal_flux_edge<R: Real>(
    sub: &Substrate,
    mesh: &HexMesh,
    geom: &ScaledGeometry<R>,
    u: &Field2<R>,
    dpi: &Field2<R>,
    theta: &Field2<R>,
    flux: &mut Field2<R>,
) {
    let nlev = u.nlev();
    let kappa = R::from_f64(KAPPA);
    let p0 = R::from_f64(P0);
    let rd = R::from_f64(RDRY);
    let cols = ColumnsMut::new(flux.as_mut_slice(), nlev);
    // 7 streamed arrays (u, dpi×2, theta×2, le, flux) per edge column.
    let bytes = 7 * nlev * R::BYTES;
    sub.run_with_bytes("primal_normal_flux_edge", cols.len(), bytes, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let [c1, c2] = mesh.edge_cells[e];
        let (d1, d2) = (dpi.col(c1 as usize), dpi.col(c2 as usize));
        let (t1, t2) = (theta.col(c1 as usize), theta.col(c2 as usize));
        let le = geom.edge_le[e];
        for k in 0..nlev {
            // Harmonic-mean thickness (division-heavy) ...
            let hm = (R::from_f64(2.0) * d1[k] * d2[k]) / (d1[k] + d2[k]);
            // ... energy-consistent Exner weighting (powf-heavy).
            let tbar = (t1[k] + t2[k]) * R::from_f64(0.5);
            let pi_e = (hm * rd * tbar / p0).powf(kappa);
            col[k] = u.at(k, e) * hm * pi_e * le;
        }
    });
}

/// Cost model for [`primal_normal_flux_edge`].
pub fn primal_normal_flux_edge_cost<R: Real>(n_edges: usize, nlev: usize) -> KernelCost {
    KernelCost {
        points: n_edges * nlev,
        flops_per_point: 9.0,
        expensive_per_point: 2.0, // one divide + one powf
        arrays: 7,                // u, dpi×2, theta×2, le, flux
        bytes_per_point: 7.0 * R::BYTES as f64,
        has_mixed_variant: true,
    }
}

/// `compute_rrr` — diagnoses the moist density ratio
/// `rrr = δπ (1 + q_v R_v/R_d) / (δφ (1 + q_v + q_c + q_r))`
/// per cell/level. Streams **seven** arrays in one loop — more than the four
/// LDCache ways — making it the cache-thrashing showcase of Fig. 6.
#[allow(clippy::too_many_arguments)]
pub fn compute_rrr<R: Real>(
    sub: &Substrate,
    dpi: &Field2<R>,
    dphi: &Field2<R>,
    qv: &Field2<R>,
    qc: &Field2<R>,
    qr: &Field2<R>,
    theta: &Field2<R>,
    rrr: &mut Field2<R>,
) {
    let nlev = dpi.nlev();
    let rv_over_rd = R::from_f64(461.5 / RDRY);
    let lanes = sub.kernel_mode() == KernelMode::Simd;
    let cols = ColumnsMut::new(rrr.as_mut_slice(), nlev);
    // 7 streamed arrays (dpi, dphi, qv, qc, qr, theta, rrr) per cell column.
    let bytes = 7 * nlev * R::BYTES;
    sub.run_with_bytes("compute_rrr", cols.len(), bytes, |c| {
        // SAFETY: each cell index is dispatched exactly once.
        let col = unsafe { cols.col(c) };
        let (d, f) = (dpi.col(c), dphi.col(c));
        let (v, cc, r) = (qv.col(c), qc.col(c), qr.col(c));
        let t = theta.col(c);
        let body = if lanes { lane_body(nlev) } else { 0 };
        let one = LaneVec::splat(R::ONE);
        let vrv = LaneVec::splat(rv_over_rd);
        let t300 = LaneVec::splat(R::from_f64(300.0));
        let stabc = LaneVec::splat(R::from_f64(1e-4));
        let mut k = 0;
        while k < body {
            let vv = LaneVec::load(&v[k..]);
            let moist = one.add(vv.mul(vrv));
            let loading = one
                .add(vv)
                .add(LaneVec::load(&cc[k..]))
                .add(LaneVec::load(&r[k..]));
            let stab = one.add(LaneVec::load(&t[k..]).sub(t300).mul(stabc));
            LaneVec::load(&d[k..])
                .mul(moist)
                .div(LaneVec::load(&f[k..]).mul(loading))
                .mul(stab)
                .store(&mut col[k..]);
            k += LANE_WIDTH;
        }
        for k in body..nlev {
            let moist = R::ONE + v[k] * rv_over_rd;
            let loading = R::ONE + v[k] + cc[k] + r[k];
            // θ-dependent stability factor keeps all seven streams live.
            let stab = R::ONE + (t[k] - R::from_f64(300.0)) * R::from_f64(1e-4);
            col[k] = d[k] * moist / (f[k] * loading) * stab;
        }
    });
}

/// Cost model for [`compute_rrr`].
pub fn compute_rrr_cost<R: Real>(n_cells: usize, nlev: usize) -> KernelCost {
    KernelCost {
        points: n_cells * nlev,
        flops_per_point: 8.0,
        expensive_per_point: 1.0, // one divide
        arrays: 7,                // dpi, dphi, qv, qc, qr, theta, rrr
        bytes_per_point: 7.0 * R::BYTES as f64,
        has_mixed_variant: true,
    }
}

/// `calc_coriolis_term` — the nonlinear Coriolis tendency
/// `(ζ+f)_e · v_t` at edges. Few arrays, no divisions, and (per the paper)
/// no mixed-precision variant: the kernel the optimizations help least.
pub fn calc_coriolis_term<R: Real>(
    sub: &Substrate,
    pv_edge: &Field2<R>,
    vt: &Field2<R>,
    tend: &mut Field2<R>,
) {
    let nlev = vt.nlev();
    let lanes = sub.kernel_mode() == KernelMode::Simd;
    let cols = ColumnsMut::new(tend.as_mut_slice(), nlev);
    // 3 streamed arrays (pv, vt, tend) per edge column.
    let bytes = 3 * nlev * R::BYTES;
    sub.run_with_bytes("calc_coriolis_term", cols.len(), bytes, |e| {
        // SAFETY: each edge index is dispatched exactly once.
        let col = unsafe { cols.col(e) };
        let (p, v) = (pv_edge.col(e), vt.col(e));
        let body = if lanes { lane_body(nlev) } else { 0 };
        let mut k = 0;
        while k < body {
            LaneVec::load(&p[k..])
                .mul(LaneVec::load(&v[k..]))
                .store(&mut col[k..]);
            k += LANE_WIDTH;
        }
        for k in body..nlev {
            col[k] = p[k] * v[k];
        }
    });
}

/// Cost model for [`calc_coriolis_term`] (always runs in f64 in the paper).
pub fn calc_coriolis_term_cost(n_edges: usize, nlev: usize) -> KernelCost {
    KernelCost {
        points: n_edges * nlev,
        flops_per_point: 1.0,
        expensive_per_point: 0.0,
        arrays: 3, // pv, vt, tend
        bytes_per_point: 3.0 * 8.0,
        has_mixed_variant: false,
    }
}

/// Cost model for the FCT limiter, `tracer_transport_hori_flux_limiter`
/// ([`crate::tracer::fct_transport_step`]): per edge-point it streams the
/// transports, two tracer columns, antidiffusive fluxes and the two limiter
/// factors — another >4-array kernel that benefits from address distribution.
pub fn tracer_flux_limiter_cost<R: Real>(n_edges: usize, nlev: usize) -> KernelCost {
    KernelCost {
        points: n_edges * nlev,
        flops_per_point: 14.0,
        expensive_per_point: 1.0, // the q_td division amortized per edge
        arrays: 6,                // transport, q×2, anti, r_plus, r_minus
        bytes_per_point: 6.0 * R::BYTES as f64,
        has_mixed_variant: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grist_mesh::{EARTH_OMEGA, EARTH_RADIUS_M};

    fn sub() -> Substrate {
        Substrate::serial()
    }

    fn setup() -> (HexMesh, ScaledGeometry<f64>) {
        let mesh = HexMesh::build(3);
        let geom = ScaledGeometry::new(&mesh, EARTH_RADIUS_M, EARTH_OMEGA);
        (mesh, geom)
    }

    #[test]
    fn grad_ke_matches_generic_gradient_up_to_sign() {
        let (mesh, geom) = setup();
        let ke = Field2::from_fn(2, mesh.n_cells(), |k, c| {
            mesh.cell_xyz[c].z * 10.0 + k as f64
        });
        let mut tend = Field2::zeros(2, mesh.n_edges());
        grad_kinetic_energy(&sub(), &mesh, &geom, &ke, &mut tend);
        let mut grad = Field2::zeros(2, mesh.n_edges());
        crate::operators::gradient(&sub(), &mesh, &geom, &ke, &mut grad);
        for (a, b) in tend.as_slice().iter().zip(grad.as_slice()) {
            assert!((a + b).abs() < 1e-15);
        }
    }

    #[test]
    fn primal_flux_is_zero_for_zero_wind_and_scales_linearly() {
        let (mesh, geom) = setup();
        let ne = mesh.n_edges();
        let nc = mesh.n_cells();
        let dpi = Field2::constant(1, nc, 500.0);
        let theta = Field2::constant(1, nc, 300.0);
        let u0 = Field2::zeros(1, ne);
        let mut f0 = Field2::constant(1, ne, 1.0);
        primal_normal_flux_edge(&sub(), &mesh, &geom, &u0, &dpi, &theta, &mut f0);
        assert!(f0.as_slice().iter().all(|&x| x == 0.0));

        let u1 = Field2::constant(1, ne, 2.0);
        let u2 = Field2::constant(1, ne, 4.0);
        let mut f1 = Field2::zeros(1, ne);
        let mut f2 = Field2::zeros(1, ne);
        primal_normal_flux_edge(&sub(), &mesh, &geom, &u1, &dpi, &theta, &mut f1);
        primal_normal_flux_edge(&sub(), &mesh, &geom, &u2, &dpi, &theta, &mut f2);
        for (a, b) in f1.as_slice().iter().zip(f2.as_slice()) {
            assert!((b / a - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rrr_reduces_to_density_ratio_when_dry() {
        let nc = 50;
        let dpi = Field2::constant(4, nc, 800.0);
        let dphi = Field2::constant(4, nc, 2000.0);
        let q0 = Field2::zeros(4, nc);
        let theta = Field2::constant(4, nc, 300.0);
        let mut rrr = Field2::zeros(4, nc);
        compute_rrr(&sub(), &dpi, &dphi, &q0, &q0, &q0, &theta, &mut rrr);
        for &x in rrr.as_slice() {
            assert!((x - 0.4).abs() < 1e-12, "dry rrr = {x}");
        }
    }

    #[test]
    fn rrr_moisture_increases_buoyancy_factor() {
        let nc = 10;
        let dpi = Field2::constant(1, nc, 800.0);
        let dphi = Field2::constant(1, nc, 2000.0);
        let qv = Field2::constant(1, nc, 0.01);
        let q0 = Field2::zeros(1, nc);
        let theta = Field2::constant(1, nc, 300.0);
        let mut dry = Field2::zeros(1, nc);
        let mut moist = Field2::zeros(1, nc);
        compute_rrr(&sub(), &dpi, &dphi, &q0, &q0, &q0, &theta, &mut dry);
        compute_rrr(&sub(), &dpi, &dphi, &qv, &q0, &q0, &theta, &mut moist);
        // vapour: R_v/R_d > 1 ⇒ (1+q·1.6)/(1+q) > 1.
        assert!(moist.at(0, 0) > dry.at(0, 0));
    }

    #[test]
    fn coriolis_term_is_elementwise_product() {
        let ne = 20;
        let pv = Field2::from_fn(3, ne, |k, e| (k + e) as f64);
        let vt = Field2::from_fn(3, ne, |k, e| (k as f64) - (e as f64));
        let mut t = Field2::zeros(3, ne);
        calc_coriolis_term(&sub(), &pv, &vt, &mut t);
        for e in 0..ne {
            for k in 0..3 {
                assert_eq!(t.at(k, e), pv.at(k, e) * vt.at(k, e));
            }
        }
    }

    #[test]
    fn lane_kernels_match_scalar_reference_bitwise() {
        use sunway_sim::KernelMode;
        let (mesh, geom) = setup();
        let scalar = Substrate::serial();
        scalar.set_kernel_mode(KernelMode::ScalarReference);
        let simd = Substrate::serial();
        simd.set_kernel_mode(KernelMode::Simd);
        // Levels chosen to exercise full lane groups, a ragged tail, and a
        // tail-only column.
        for nlev in [3usize, 8, 11, 19] {
            let nc = mesh.n_cells();
            let ne = mesh.n_edges();
            let mk = |seed: usize, n: usize| {
                Field2::from_fn(nlev, n, |k, i| {
                    0.5 + ((k * 31 + i * 7 + seed) % 97) as f64 * 0.013
                })
            };
            // compute_rrr
            let (dpi, dphi) = (mk(1, nc), mk(2, nc));
            let (qv, qc, qr) = (mk(3, nc), mk(4, nc), mk(5, nc));
            let theta = mk(6, nc);
            let mut r_s = Field2::zeros(nlev, nc);
            let mut r_v = Field2::zeros(nlev, nc);
            compute_rrr(&scalar, &dpi, &dphi, &qv, &qc, &qr, &theta, &mut r_s);
            compute_rrr(&simd, &dpi, &dphi, &qv, &qc, &qr, &theta, &mut r_v);
            assert_eq!(r_s.as_slice(), r_v.as_slice(), "compute_rrr nlev={nlev}");
            // grad_kinetic_energy
            let ke = mk(7, nc);
            let mut g_s = Field2::zeros(nlev, ne);
            let mut g_v = Field2::zeros(nlev, ne);
            grad_kinetic_energy(&scalar, &mesh, &geom, &ke, &mut g_s);
            grad_kinetic_energy(&simd, &mesh, &geom, &ke, &mut g_v);
            assert_eq!(g_s.as_slice(), g_v.as_slice(), "grad_ke nlev={nlev}");
            // calc_coriolis_term
            let (pv, vt) = (mk(8, ne), mk(9, ne));
            let mut c_s = Field2::zeros(nlev, ne);
            let mut c_v = Field2::zeros(nlev, ne);
            calc_coriolis_term(&scalar, &pv, &vt, &mut c_s);
            calc_coriolis_term(&simd, &pv, &vt, &mut c_v);
            assert_eq!(c_s.as_slice(), c_v.as_slice(), "coriolis nlev={nlev}");
        }
    }

    #[test]
    fn cost_models_reflect_precision_byte_savings() {
        let c64 = compute_rrr_cost::<f64>(1000, 30);
        let c32 = compute_rrr_cost::<f32>(1000, 30);
        assert_eq!(c64.total_bytes(), 2.0 * c32.total_bytes());
        assert_eq!(c64.total_flops(), c32.total_flops());
        assert!(c64.arrays > 4, "rrr must exceed the LDCache way count");
        assert!(!calc_coriolis_term_cost(10, 3).has_mixed_variant);
    }
}
